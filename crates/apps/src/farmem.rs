//! The portable far-memory interface the workloads are written against.
//!
//! Every evaluation workload runs unmodified on DiLOS, Fastswap, and AIFM —
//! the compatibility the paper's title is about. [`FarMemory`] is the
//! byte-level surface all three systems expose; [`SystemSpec`] is the
//! factory the benches use to sweep systems and local-memory ratios.

use dilos_baselines::{Aifm, AifmConfig, Fastswap, FastswapConfig};
use dilos_core::{Dilos, DilosConfig, NoPrefetch, Readahead, TrendBased};
use dilos_sim::{MetricsRegistry, Ns, Observability, SpanProfiler};

/// Observation surface of a far-memory system: counters, traces, telemetry.
///
/// Split out of [`FarMemory`] so the core data-path surface stays small.
/// Everything here is pure observation — calling it never changes what a
/// workload computes or when. All methods have dark defaults; systems
/// booted with [`Observability::none`] report zeros and empty handles.
pub trait Introspect {
    /// `(major, minor)` page-fault counts, where the system defines them
    /// (AIFM reports `(misses, in-flight waits)`).
    fn fault_counts(&self) -> (u64, u64);

    /// Total network traffic so far: `(tx_bytes, rx_bytes)`.
    fn net_bytes(&self) -> (u64, u64);

    /// Downcast to a DiLOS node for DiLOS-specific reporting.
    fn as_dilos(&self) -> Option<&Dilos> {
        None
    }

    /// Order-sensitive digest of the structured event trace; 0 when the
    /// system was booted with a non-recording [`Observability`] bundle.
    /// Equal seeds and configurations must produce equal digests.
    ///
    /// Takes `&mut self` because digesting quiesces the system first:
    /// pending calendar events (in-flight fetches, open reclaim episodes,
    /// deferred writebacks) are delivered at their scheduled virtual times
    /// so the digest covers a settled trace. Idempotent.
    fn trace_digest(&mut self) -> u64 {
        0
    }

    /// Invariant-auditor findings (empty on a healthy run, and always empty
    /// when the system does not support auditing or it is off). Quiesces
    /// pending background work first, like [`Introspect::trace_digest`].
    fn audit_report(&mut self) -> Vec<String> {
        Vec::new()
    }

    /// Handle to the system's metrics registry. Disabled (and empty) unless
    /// the system was booted with a metered [`Observability`] bundle.
    fn metrics(&self) -> MetricsRegistry {
        MetricsRegistry::disabled()
    }

    /// Handle to the system's span profiler. Disabled unless the system was
    /// booted with a metered [`Observability`] bundle.
    fn profiler(&self) -> SpanProfiler {
        SpanProfiler::disabled()
    }

    /// `(major, minor, zero_fill)` fault counts *as the event trace records
    /// them*, for cross-checking trace-derived profiler counts against the
    /// hand-maintained stats. AIFM only traces misses as major faults, so it
    /// reports `(misses, 0, 0)` here even though [`Introspect::fault_counts`]
    /// exposes in-flight waits.
    fn fault_counters(&self) -> (u64, u64, u64) {
        (0, 0, 0)
    }

    /// Hand-maintained per-phase fault-latency sums `(label, ns)`, using the
    /// same labels as the span profiler's phases. Empty for systems that do
    /// not keep a phase breakdown.
    fn phase_sums(&self) -> Vec<(&'static str, Ns)> {
        Vec::new()
    }
}

/// Byte-addressable far memory with virtual-time accounting.
///
/// This is the data-path surface (alloc/read/write/compute/time); the
/// observation surface lives in the [`Introspect`] supertrait.
pub trait FarMemory: Introspect {
    /// Allocates `len` bytes; returns the base virtual address.
    fn alloc(&mut self, len: usize) -> u64;

    /// Releases `len` bytes at `va`.
    fn release(&mut self, va: u64, len: usize);

    /// Reads `buf.len()` bytes at `va` on `core`.
    fn read(&mut self, core: usize, va: u64, buf: &mut [u8]);

    /// Writes `buf` at `va` on `core`.
    fn write(&mut self, core: usize, va: u64, buf: &[u8]);

    /// Charges `ns` of application compute to `core`.
    fn compute(&mut self, core: usize, ns: Ns);

    /// Virtual time on `core`.
    fn now(&self, core: usize) -> Ns;

    /// Joins all cores; returns the barrier time.
    fn barrier(&mut self) -> Ns;

    /// Completion time across cores.
    fn max_now(&self) -> Ns;

    /// Display label for result tables.
    fn label(&self) -> String;

    /// Reads a little-endian `u64`.
    fn read_u64(&mut self, core: usize, va: u64) -> u64 {
        let mut b = [0u8; 8];
        self.read(core, va, &mut b);
        u64::from_le_bytes(b)
    }

    /// Writes a little-endian `u64`.
    fn write_u64(&mut self, core: usize, va: u64, v: u64) {
        self.write(core, va, &v.to_le_bytes());
    }

    /// Reads a little-endian `i64`.
    fn read_i64(&mut self, core: usize, va: u64) -> i64 {
        self.read_u64(core, va) as i64
    }

    /// Writes a little-endian `i64`.
    fn write_i64(&mut self, core: usize, va: u64, v: i64) {
        self.write_u64(core, va, v as u64);
    }

    /// Reads a little-endian `f64`.
    fn read_f64(&mut self, core: usize, va: u64) -> f64 {
        f64::from_bits(self.read_u64(core, va))
    }

    /// Writes a little-endian `f64`.
    fn write_f64(&mut self, core: usize, va: u64, v: f64) {
        self.write_u64(core, va, v.to_bits());
    }

    /// Reads a little-endian `u32`.
    fn read_u32(&mut self, core: usize, va: u64) -> u32 {
        let mut b = [0u8; 4];
        self.read(core, va, &mut b);
        u32::from_le_bytes(b)
    }

    /// Writes a little-endian `u32`.
    fn write_u32(&mut self, core: usize, va: u64, v: u32) {
        self.write(core, va, &v.to_le_bytes());
    }
}

impl Introspect for Dilos {
    fn fault_counts(&self) -> (u64, u64) {
        let s = self.stats();
        (s.major_faults, s.minor_faults)
    }
    fn net_bytes(&self) -> (u64, u64) {
        self.rdma().total_bytes()
    }
    fn as_dilos(&self) -> Option<&Dilos> {
        Some(self)
    }
    fn trace_digest(&mut self) -> u64 {
        Dilos::trace_digest(self)
    }
    fn audit_report(&mut self) -> Vec<String> {
        Dilos::audit_report(self)
    }
    fn metrics(&self) -> MetricsRegistry {
        Dilos::metrics(self).clone()
    }
    fn profiler(&self) -> SpanProfiler {
        Dilos::profiler(self).clone()
    }
    fn fault_counters(&self) -> (u64, u64, u64) {
        let s = self.stats();
        (s.major_faults, s.minor_faults, s.zero_fills)
    }
    fn phase_sums(&self) -> Vec<(&'static str, Ns)> {
        self.stats().breakdown.sums().to_vec()
    }
}

impl FarMemory for Dilos {
    fn alloc(&mut self, len: usize) -> u64 {
        self.ddc_alloc(len)
    }
    fn release(&mut self, va: u64, len: usize) {
        self.ddc_free(va, len);
    }
    fn read(&mut self, core: usize, va: u64, buf: &mut [u8]) {
        Dilos::read(self, core, va, buf);
    }
    fn write(&mut self, core: usize, va: u64, buf: &[u8]) {
        Dilos::write(self, core, va, buf);
    }
    fn compute(&mut self, core: usize, ns: Ns) {
        Dilos::compute(self, core, ns);
    }
    fn now(&self, core: usize) -> Ns {
        Dilos::now(self, core)
    }
    fn barrier(&mut self) -> Ns {
        Dilos::barrier(self)
    }
    fn max_now(&self) -> Ns {
        Dilos::max_now(self)
    }
    fn label(&self) -> String {
        let transport = if self.config().tcp_mode {
            "DiLOS-TCP"
        } else {
            "DiLOS"
        };
        format!("{} ({})", transport, self.prefetcher_name())
    }
}

impl Introspect for Fastswap {
    fn fault_counts(&self) -> (u64, u64) {
        let s = self.stats();
        (s.major_faults, s.minor_faults)
    }
    fn net_bytes(&self) -> (u64, u64) {
        let bw = self.rdma().fabric().bandwidth();
        (bw.total_tx(), bw.total_rx())
    }
    fn trace_digest(&mut self) -> u64 {
        Fastswap::trace_digest(self)
    }
    fn metrics(&self) -> MetricsRegistry {
        Fastswap::metrics(self).clone()
    }
    fn profiler(&self) -> SpanProfiler {
        Fastswap::profiler(self).clone()
    }
    fn fault_counters(&self) -> (u64, u64, u64) {
        let s = self.stats();
        (s.major_faults, s.minor_faults, s.zero_fills)
    }
}

impl FarMemory for Fastswap {
    fn alloc(&mut self, len: usize) -> u64 {
        Fastswap::alloc(self, len)
    }
    fn release(&mut self, va: u64, len: usize) {
        Fastswap::free(self, va, len);
    }
    fn read(&mut self, core: usize, va: u64, buf: &mut [u8]) {
        Fastswap::read(self, core, va, buf);
    }
    fn write(&mut self, core: usize, va: u64, buf: &[u8]) {
        Fastswap::write(self, core, va, buf);
    }
    fn compute(&mut self, core: usize, ns: Ns) {
        Fastswap::compute(self, core, ns);
    }
    fn now(&self, core: usize) -> Ns {
        Fastswap::now(self, core)
    }
    fn barrier(&mut self) -> Ns {
        Fastswap::barrier(self)
    }
    fn max_now(&self) -> Ns {
        Fastswap::max_now(self)
    }
    fn label(&self) -> String {
        "Fastswap".to_string()
    }
}

impl Introspect for Aifm {
    fn fault_counts(&self) -> (u64, u64) {
        let s = self.stats();
        (s.misses, s.inflight_waits)
    }
    fn net_bytes(&self) -> (u64, u64) {
        let bw = self.rdma().fabric().bandwidth();
        (bw.total_tx(), bw.total_rx())
    }
    fn trace_digest(&mut self) -> u64 {
        Aifm::trace_digest(self)
    }
    fn metrics(&self) -> MetricsRegistry {
        Aifm::metrics(self).clone()
    }
    fn profiler(&self) -> SpanProfiler {
        Aifm::profiler(self).clone()
    }
    fn fault_counters(&self) -> (u64, u64, u64) {
        // AIFM's trace only marks demand misses as faults; in-flight waits
        // are spin-waits without a fault span.
        (self.stats().misses, 0, 0)
    }
}

impl FarMemory for Aifm {
    fn alloc(&mut self, len: usize) -> u64 {
        Aifm::alloc(self, len)
    }
    fn release(&mut self, va: u64, len: usize) {
        Aifm::free(self, va, len);
    }
    fn read(&mut self, core: usize, va: u64, buf: &mut [u8]) {
        Aifm::read(self, core, va, buf);
    }
    fn write(&mut self, core: usize, va: u64, buf: &[u8]) {
        Aifm::write(self, core, va, buf);
    }
    fn compute(&mut self, core: usize, ns: Ns) {
        Aifm::compute(self, core, ns);
    }
    fn now(&self, core: usize) -> Ns {
        Aifm::now(self, core)
    }
    fn barrier(&mut self) -> Ns {
        Aifm::barrier(self)
    }
    fn max_now(&self) -> Ns {
        Aifm::max_now(self)
    }
    fn label(&self) -> String {
        "AIFM".to_string()
    }
}

/// Which system to boot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemKind {
    /// DiLOS without a prefetcher.
    DilosNoPrefetch,
    /// DiLOS with the Linux-style readahead prefetcher.
    DilosReadahead,
    /// DiLOS with Leap's trend-based prefetcher.
    DilosTrend,
    /// DiLOS with readahead over emulated TCP (the AIFM-fair config).
    DilosTcp,
    /// Fastswap.
    Fastswap,
    /// AIFM.
    Aifm,
}

impl SystemKind {
    /// All kinds, for sweeps.
    pub const ALL: [SystemKind; 6] = [
        SystemKind::Fastswap,
        SystemKind::DilosNoPrefetch,
        SystemKind::DilosReadahead,
        SystemKind::DilosTrend,
        SystemKind::DilosTcp,
        SystemKind::Aifm,
    ];

    /// Table label.
    pub fn label(self) -> &'static str {
        match self {
            SystemKind::DilosNoPrefetch => "DiLOS no-prefetch",
            SystemKind::DilosReadahead => "DiLOS readahead",
            SystemKind::DilosTrend => "DiLOS trend-based",
            SystemKind::DilosTcp => "DiLOS-TCP",
            SystemKind::Fastswap => "Fastswap",
            SystemKind::Aifm => "AIFM",
        }
    }
}

/// A bootable system description: kind + sizing.
#[derive(Debug, Clone)]
pub struct SystemSpec {
    /// Which system.
    pub kind: SystemKind,
    /// Local cache size in 4 KiB pages.
    pub local_pages: usize,
    /// Remote region size in bytes.
    pub remote_bytes: u64,
    /// Simulated cores.
    pub cores: usize,
    /// The observability bundle handed to the booted system — tracing,
    /// auditing (DiLOS only), metrics, and the span profiler travel
    /// together. Read results back via [`Introspect`]. Use a fresh bundle
    /// per boot; sharing one across systems interleaves their traces.
    pub obs: Observability,
}

impl SystemSpec {
    /// A spec with enough remote memory for `working_set` bytes and a local
    /// cache of `ratio_percent` of it (the paper's 12.5/25/50/100 sweeps).
    pub fn for_working_set(kind: SystemKind, working_set: u64, ratio_percent: u32) -> Self {
        let ws_pages = working_set.div_ceil(4096);
        let local_pages = ((ws_pages * ratio_percent as u64) / 100).max(32) as usize;
        Self {
            kind,
            local_pages,
            // Headroom for allocator metadata and rounding.
            remote_bytes: (working_set * 2).next_power_of_two().max(1 << 24),
            cores: 1,
            obs: Observability::none(),
        }
    }

    /// Replaces the observability bundle (builder-style convenience for
    /// sweep loops that share a base spec).
    pub fn observed(mut self, obs: Observability) -> Self {
        self.obs = obs;
        self
    }

    /// Boots the system, handing it the spec's [`Observability`] bundle.
    pub fn boot(&self) -> Box<dyn FarMemory> {
        match self.kind {
            SystemKind::Fastswap => Box::new(Fastswap::new(FastswapConfig {
                local_pages: self.local_pages,
                remote_bytes: self.remote_bytes,
                cores: self.cores,
                obs: self.obs.clone(),
                ..FastswapConfig::default()
            })),
            SystemKind::Aifm => Box::new(Aifm::new(AifmConfig {
                local_chunks: self.local_pages,
                remote_bytes: self.remote_bytes,
                cores: self.cores,
                obs: self.obs.clone(),
                ..AifmConfig::default()
            })),
            kind => {
                let mut node = Dilos::new(DilosConfig {
                    local_pages: self.local_pages,
                    remote_bytes: self.remote_bytes,
                    cores: self.cores,
                    tcp_mode: kind == SystemKind::DilosTcp,
                    obs: self.obs.clone(),
                    ..DilosConfig::default()
                });
                match kind {
                    SystemKind::DilosNoPrefetch => node.set_prefetcher(Box::new(NoPrefetch)),
                    SystemKind::DilosTrend => node.set_prefetcher(Box::new(TrendBased::new())),
                    _ => node.set_prefetcher(Box::new(Readahead::new())),
                }
                Box::new(node)
            }
        }
    }
}

/// A typed far-memory array of little-endian `u64`/`i64`/`f64` cells.
#[derive(Debug, Clone, Copy)]
pub struct FarArray {
    base: u64,
    len: usize,
}

impl FarArray {
    /// Allocates an array of `len` 8-byte cells.
    pub fn new(mem: &mut dyn FarMemory, len: usize) -> Self {
        let base = mem.alloc(len * 8);
        Self { base, len }
    }

    /// Wraps an existing allocation.
    pub fn from_raw(base: u64, len: usize) -> Self {
        Self { base, len }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the array has no cells.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Base address.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Address of cell `i`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indices.
    pub fn addr(&self, i: usize) -> u64 {
        assert!(i < self.len, "index {i} out of bounds ({})", self.len);
        self.base + (i * 8) as u64
    }

    /// Reads cell `i` as `u64`.
    pub fn get(&self, mem: &mut dyn FarMemory, core: usize, i: usize) -> u64 {
        mem.read_u64(core, self.addr(i))
    }

    /// Writes cell `i` as `u64`.
    pub fn set(&self, mem: &mut dyn FarMemory, core: usize, i: usize, v: u64) {
        mem.write_u64(core, self.addr(i), v);
    }

    /// Reads cell `i` as `i64`.
    pub fn get_i64(&self, mem: &mut dyn FarMemory, core: usize, i: usize) -> i64 {
        mem.read_i64(core, self.addr(i))
    }

    /// Writes cell `i` as `i64`.
    pub fn set_i64(&self, mem: &mut dyn FarMemory, core: usize, i: usize, v: i64) {
        mem.write_i64(core, self.addr(i), v);
    }

    /// Reads cell `i` as `f64`.
    pub fn get_f64(&self, mem: &mut dyn FarMemory, core: usize, i: usize) -> f64 {
        mem.read_f64(core, self.addr(i))
    }

    /// Writes cell `i` as `f64`.
    pub fn set_f64(&self, mem: &mut dyn FarMemory, core: usize, i: usize, v: f64) {
        mem.write_f64(core, self.addr(i), v);
    }

    /// Bulk-reads cells `[start, start + out.len())`.
    pub fn read_range(&self, mem: &mut dyn FarMemory, core: usize, start: usize, out: &mut [u64]) {
        assert!(start + out.len() <= self.len, "range out of bounds");
        let mut bytes = vec![0u8; out.len() * 8];
        mem.read(core, self.base + (start * 8) as u64, &mut bytes);
        for (i, chunk) in bytes.chunks_exact(8).enumerate() {
            out[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
    }

    /// Bulk-writes cells starting at `start`.
    pub fn write_range(&self, mem: &mut dyn FarMemory, core: usize, start: usize, vals: &[u64]) {
        assert!(start + vals.len() <= self.len, "range out of bounds");
        let mut bytes = Vec::with_capacity(vals.len() * 8);
        for v in vals {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        mem.write(core, self.base + (start * 8) as u64, &bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_system_boots_and_roundtrips() {
        for kind in SystemKind::ALL {
            let spec = SystemSpec::for_working_set(kind, 1 << 20, 50);
            let mut mem = spec.boot();
            let va = mem.alloc(4096 * 8);
            mem.write_u64(0, va + 16, 0xDEAD_BEEF);
            assert_eq!(mem.read_u64(0, va + 16), 0xDEAD_BEEF, "{}", kind.label());
            assert!(mem.now(0) > 0);
        }
    }

    #[test]
    fn far_array_typed_access() {
        let mut mem = SystemSpec::for_working_set(SystemKind::DilosReadahead, 1 << 20, 100).boot();
        let arr = FarArray::new(mem.as_mut(), 1000);
        arr.set_i64(mem.as_mut(), 0, 7, -42);
        assert_eq!(arr.get_i64(mem.as_mut(), 0, 7), -42);
        arr.set_f64(mem.as_mut(), 0, 8, 2.5);
        assert_eq!(arr.get_f64(mem.as_mut(), 0, 8), 2.5);
        let vals: Vec<u64> = (0..100).collect();
        arr.write_range(mem.as_mut(), 0, 100, &vals);
        let mut out = vec![0u64; 100];
        arr.read_range(mem.as_mut(), 0, 100, &mut out);
        assert_eq!(out, vals);
    }

    #[test]
    fn ratio_sizing_matches_the_paper_sweeps() {
        let ws = 1u64 << 24; // 16 MiB working set.
        let s125 = SystemSpec::for_working_set(SystemKind::Fastswap, ws, 13);
        let s100 = SystemSpec::for_working_set(SystemKind::Fastswap, ws, 100);
        assert_eq!(s100.local_pages, (ws / 4096) as usize);
        assert!(s125.local_pages * 7 < s100.local_pages);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn far_array_bounds_checked() {
        let mut mem = SystemSpec::for_working_set(SystemKind::DilosReadahead, 1 << 20, 100).boot();
        let arr = FarArray::new(mem.as_mut(), 4);
        arr.get(mem.as_mut(), 0, 4);
    }
}
