//! The app-aware Redis prefetch guide (§6.3).
//!
//! "The app-aware prefetcher for GET and LRANGE is written in only 275
//! lines of C code and compiled with the Redis source. It includes four
//! handlers for subpage prefetching and four hooker functions for
//! application information gathering. Note that we need not modify the
//! Redis main code for the prefetcher."
//!
//! Hooks (called by the server wrapper, standing in for the ELF-loader
//! function hooks of §5) arm the guide with what Redis is about to
//! traverse; the fault handler then drives it:
//!
//! - **GET**: on the first fault into a value, subpage-fetch the SDS header,
//!   read the length, and prefetch exactly the pages the value spans.
//! - **LRANGE**: on each fault during a quicklist traversal, subpage-fetch
//!   the node struct (it arrives ahead of the full page), then prefetch the
//!   node's ziplist pages and chase the `next` pointer a few nodes ahead —
//!   the Figure 11 pipeline.

use dilos_core::{GuideOps, PrefetchGuide};

use crate::redis::quicklist::{decode_node, NODE_SIZE};
use crate::redis::sds::SDS_HDR;

/// How many quicklist nodes to chase ahead per fault.
const CHASE_DEPTH: usize = 3;

/// Guide statistics (for the evaluation tables).
#[derive(Debug, Clone, Copy, Default)]
pub struct RedisGuideStats {
    /// GET faults handled.
    pub get_assists: u64,
    /// LRANGE faults handled.
    pub lrange_assists: u64,
    /// Pages prefetched by the guide.
    pub pages_prefetched: u64,
}

/// The Redis prefetch guide.
#[derive(Debug, Default)]
pub struct RedisGuide {
    /// Armed by the GET hook: the SDS value about to be read.
    get_target: Option<u64>,
    /// Armed by the LRANGE hook and advanced on faults: the next quicklist
    /// node to chase.
    lrange_node: Option<u64>,
    /// Stats.
    pub stats: RedisGuideStats,
}

impl RedisGuide {
    /// Creates an idle guide.
    pub fn new() -> Self {
        Self::default()
    }

    /// Hook: Redis is about to read the SDS value at `sds_va`
    /// (`lookupKeyRead` → `addReplyBulk` in real Redis).
    pub fn hook_get(&mut self, sds_va: u64) {
        self.get_target = Some(sds_va);
    }

    /// Hook: Redis is about to traverse the quicklist starting at
    /// `head_node` (`listTypeIterator` in real Redis).
    pub fn hook_lrange(&mut self, head_node: u64) {
        self.lrange_node = (head_node != 0).then_some(head_node);
    }

    /// Hook: the command finished; disarm.
    pub fn hook_done(&mut self) {
        self.get_target = None;
        self.lrange_node = None;
    }

    fn assist_get(&mut self, sds_va: u64, ops: &mut dyn GuideOps) {
        // Subpage-fetch the SDS header; its length tells us exactly which
        // pages the value spans.
        let Some((hdr, _)) = ops.subpage_read(sds_va, SDS_HDR) else {
            return;
        };
        let len = u32::from_le_bytes(hdr[..4].try_into().expect("4-byte len")) as u64;
        let end = sds_va + SDS_HDR as u64 + len;
        let mut page = (sds_va >> 12) << 12;
        while page < end {
            ops.prefetch_page(page);
            self.stats.pages_prefetched += 1;
            page += 4096;
        }
        self.stats.get_assists += 1;
    }

    fn assist_lrange(&mut self, ops: &mut dyn GuideOps) {
        let Some(mut node_va) = self.lrange_node else {
            return;
        };
        for _ in 0..CHASE_DEPTH {
            // Subpage-fetch the node struct; it lands ahead of any full
            // page fetch, giving us the ziplist and next pointers early.
            let Some((bytes, _)) = ops.subpage_read(node_va, NODE_SIZE) else {
                break;
            };
            let node = decode_node(&bytes);
            // Prefetch the pages the node's ziplist occupies.
            if node.zl != 0 {
                let mut page = (node.zl >> 12) << 12;
                let end = node.zl + node.zl_bytes as u64;
                while page < end {
                    ops.prefetch_page(page);
                    self.stats.pages_prefetched += 1;
                    page += 4096;
                }
            }
            if node.next == 0 {
                self.lrange_node = None;
                self.stats.lrange_assists += 1;
                return;
            }
            // Prefetch the next node's page and keep chasing.
            ops.prefetch_page(node.next);
            self.stats.pages_prefetched += 1;
            node_va = node.next;
        }
        self.lrange_node = Some(node_va);
        self.stats.lrange_assists += 1;
    }
}

impl PrefetchGuide for RedisGuide {
    fn on_fault(&mut self, _va: u64, ops: &mut dyn GuideOps) {
        if let Some(sds_va) = self.get_target.take() {
            self.assist_get(sds_va, ops);
        }
        if self.lrange_node.is_some() {
            self.assist_lrange(ops);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dilos_sim::Ns;

    /// A scripted GuideOps for testing the guide's decisions in isolation.
    #[derive(Default)]
    struct FakeOps {
        memory: std::collections::HashMap<u64, Vec<u8>>,
        prefetched: Vec<u64>,
    }

    impl GuideOps for FakeOps {
        fn subpage_read(&mut self, va: u64, len: usize) -> Option<(Vec<u8>, Ns)> {
            self.memory
                .get(&va)
                .map(|d| (d[..len.min(d.len())].to_vec(), 100))
        }
        fn prefetch_page(&mut self, va: u64) {
            self.prefetched.push(va);
        }
        fn resident_read(&mut self, _va: u64, _buf: &mut [u8]) -> bool {
            false
        }
        fn now(&self) -> Ns {
            0
        }
    }

    fn node_bytes(next: u64, prev: u64, zl: u64, zl_bytes: u32, count: u32) -> Vec<u8> {
        let mut b = vec![0u8; NODE_SIZE];
        b[0..8].copy_from_slice(&next.to_le_bytes());
        b[8..16].copy_from_slice(&prev.to_le_bytes());
        b[16..24].copy_from_slice(&zl.to_le_bytes());
        b[24..28].copy_from_slice(&zl_bytes.to_le_bytes());
        b[28..32].copy_from_slice(&count.to_le_bytes());
        b
    }

    #[test]
    fn get_assist_prefetches_exactly_the_value_pages() {
        let mut guide = RedisGuide::new();
        let mut ops = FakeOps::default();
        // A 10 KiB value at page-aligned 0x10000: spans 3 pages.
        let sds = 0x10_000u64;
        let mut hdr = vec![0u8; SDS_HDR];
        hdr[..4].copy_from_slice(&(10_240u32).to_le_bytes());
        ops.memory.insert(sds, hdr);
        guide.hook_get(sds);
        guide.on_fault(sds, &mut ops);
        assert_eq!(ops.prefetched, vec![0x10_000, 0x11_000, 0x12_000]);
        assert_eq!(guide.stats.get_assists, 1);
        // The target is one-shot.
        guide.on_fault(sds, &mut ops);
        assert_eq!(guide.stats.get_assists, 1);
    }

    #[test]
    fn lrange_assist_chases_nodes_and_ziplists() {
        let mut guide = RedisGuide::new();
        let mut ops = FakeOps::default();
        // Three nodes on separate pages, each with a 1-page ziplist.
        let (n1, n2, n3) = (0x20_000u64, 0x30_000u64, 0x40_000u64);
        let (z1, z2, z3) = (0x21_000u64, 0x31_000u64, 0x41_000u64);
        ops.memory.insert(n1, node_bytes(n2, 0, z1, 4096, 5));
        ops.memory.insert(n2, node_bytes(n3, n1, z2, 4096, 5));
        ops.memory.insert(n3, node_bytes(0, n2, z3, 4096, 5));
        guide.hook_lrange(n1);
        guide.on_fault(n1, &mut ops);
        // Ziplists of all three nodes + the next-node pages.
        assert!(ops.prefetched.contains(&z1));
        assert!(ops.prefetched.contains(&z2));
        assert!(ops.prefetched.contains(&z3));
        assert!(ops.prefetched.contains(&n2));
        assert!(ops.prefetched.contains(&n3));
        // Chain ended; the guide disarmed itself.
        assert_eq!(guide.stats.lrange_assists, 1);
        let before = ops.prefetched.len();
        guide.on_fault(n1, &mut ops);
        assert_eq!(ops.prefetched.len(), before);
    }

    #[test]
    fn lrange_assist_resumes_where_it_stopped() {
        let mut guide = RedisGuide::new();
        let mut ops = FakeOps::default();
        // A chain longer than CHASE_DEPTH.
        let nodes: Vec<u64> = (0..6).map(|i| 0x100_000 + i * 0x10_000).collect();
        for (i, &n) in nodes.iter().enumerate() {
            let next = nodes.get(i + 1).copied().unwrap_or(0);
            ops.memory
                .insert(n, node_bytes(next, 0, n + 0x1_000, 4096, 3));
        }
        guide.hook_lrange(nodes[0]);
        guide.on_fault(nodes[0], &mut ops);
        let first_round = ops.prefetched.len();
        assert!(first_round > 0);
        // Second fault continues deeper into the chain.
        guide.on_fault(nodes[3], &mut ops);
        assert!(ops.prefetched.len() > first_round);
        assert!(ops.prefetched.contains(&(nodes[5] + 0x1_000)));
    }

    #[test]
    fn disarmed_guide_is_inert() {
        let mut guide = RedisGuide::new();
        let mut ops = FakeOps::default();
        guide.on_fault(0x5000, &mut ops);
        assert!(ops.prefetched.is_empty());
        guide.hook_get(0x9000);
        guide.hook_done();
        guide.on_fault(0x9000, &mut ops);
        assert!(ops.prefetched.is_empty());
    }
}
