//! The redis-benchmark equivalent: workload generators and drivers for the
//! GET / LRANGE / DEL evaluations (§6.2, §6.3 — Figures 10, 12, Table 4).
//!
//! Mirrors the paper's methodology: fully populate the keyspace (4 KiB,
//! 64 KiB, or the Facebook-photo mixed sizes), then issue GET queries with
//! random keys; for lists, populate many separate lists ("we have modified
//! the benchmark to populate and query 100 thousand separate lists") and
//! run LRANGE_100; for the bandwidth experiment, SET small values then DEL
//! a random 70 % of the keyspace.

use dilos_sim::{LatencyHistogram, MixedSizes, Ns, SplitMix64};

use crate::farmem::FarMemory;
use crate::redis::server::RedisServer;

/// Value-size configuration for the GET workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueSizes {
    /// Fixed-size values.
    Fixed(usize),
    /// The six-way mixed distribution (4–128 KiB).
    Mixed,
}

impl ValueSizes {
    fn sample(&self, rng: &mut SplitMix64) -> usize {
        match self {
            ValueSizes::Fixed(n) => *n,
            ValueSizes::Mixed => MixedSizes::sample(rng),
        }
    }

    /// Label for tables.
    pub fn label(&self) -> String {
        match self {
            ValueSizes::Fixed(n) if n % 1024 == 0 => format!("{}KB", n / 1024),
            ValueSizes::Fixed(n) => format!("{n}B"),
            ValueSizes::Mixed => "mixed".to_string(),
        }
    }
}

/// Result of a query workload run.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Queries executed.
    pub queries: u64,
    /// Virtual elapsed time.
    pub elapsed: Ns,
    /// Per-query latency histogram.
    pub latency: LatencyHistogram,
}

impl BenchResult {
    /// Requests per second (the Figure 10 metric).
    pub fn qps(&self) -> f64 {
        if self.elapsed == 0 {
            return 0.0;
        }
        self.queries as f64 / (self.elapsed as f64 / 1e9)
    }
}

/// The workload driver.
#[derive(Debug)]
pub struct RedisBench {
    /// Key count for the keyspace workloads.
    pub keys: usize,
    /// Value sizes.
    pub sizes: ValueSizes,
    /// RNG seed.
    pub seed: u64,
}

impl RedisBench {
    /// Key string for index `i` (stable, zero-padded like redis-benchmark).
    pub fn key(i: usize) -> Vec<u8> {
        format!("key:{i:010}").into_bytes()
    }

    /// Populates the keyspace with SETs; returns total value bytes.
    pub fn populate(&self, server: &mut RedisServer, mem: &mut dyn FarMemory) -> u64 {
        let mut rng = SplitMix64::new(self.seed);
        let mut total = 0u64;
        let mut payload = vec![0u8; 128 * 1024];
        for i in 0..self.keys {
            let size = self.sizes.sample(&mut rng);
            // Deterministic, verifiable fill.
            let stamp = (i % 251) as u8;
            payload[..size].fill(stamp);
            server.set(mem, 0, &Self::key(i), &payload[..size]);
            total += size as u64;
        }
        total
    }

    /// GET workload: `queries` random-key GETs, verifying payloads.
    ///
    /// # Panics
    ///
    /// Panics if a value comes back missing or corrupted.
    pub fn run_gets(
        &self,
        server: &mut RedisServer,
        mem: &mut dyn FarMemory,
        queries: usize,
    ) -> BenchResult {
        let mut rng = SplitMix64::new(self.seed ^ 0x6E75);
        let mut latency = LatencyHistogram::new();
        let t0 = mem.now(0);
        for _ in 0..queries {
            let i = rng.gen_range(self.keys as u64) as usize;
            let q0 = mem.now(0);
            let v = server
                .get(mem, 0, &Self::key(i))
                .unwrap_or_else(|| panic!("missing key {i}"));
            latency.record(mem.now(0) - q0);
            let stamp = (i % 251) as u8;
            assert!(v.iter().all(|&b| b == stamp), "corrupted value for key {i}");
        }
        BenchResult {
            queries: queries as u64,
            elapsed: mem.now(0) - t0,
            latency,
        }
    }

    /// DEL workload: deletes a random `percent` of the keyspace (the
    /// fragmentation phase of Figure 12). Returns the deleted key indices.
    pub fn run_dels(
        &self,
        server: &mut RedisServer,
        mem: &mut dyn FarMemory,
        percent: u32,
    ) -> Vec<usize> {
        let mut rng = SplitMix64::new(self.seed ^ 0xDE1);
        let mut idx: Vec<usize> = (0..self.keys).collect();
        rng.shuffle(&mut idx);
        let n = self.keys * percent as usize / 100;
        let deleted = idx[..n].to_vec();
        for &i in &deleted {
            assert!(server.del(mem, 0, &Self::key(i)), "key {i} must exist");
        }
        deleted
    }

    /// GET over the surviving keys only (the post-DEL phase of Figure 12).
    pub fn run_gets_surviving(
        &self,
        server: &mut RedisServer,
        mem: &mut dyn FarMemory,
        deleted: &[usize],
        queries: usize,
    ) -> BenchResult {
        let dead: std::collections::HashSet<usize> = deleted.iter().copied().collect();
        let alive: Vec<usize> = (0..self.keys).filter(|i| !dead.contains(i)).collect();
        assert!(!alive.is_empty(), "some keys must survive");
        let mut rng = SplitMix64::new(self.seed ^ 0x6E76);
        let mut latency = LatencyHistogram::new();
        let t0 = mem.now(0);
        for _ in 0..queries {
            let i = alive[rng.gen_range(alive.len() as u64) as usize];
            let q0 = mem.now(0);
            let v = server
                .get(mem, 0, &Self::key(i))
                .unwrap_or_else(|| panic!("missing surviving key {i}"));
            latency.record(mem.now(0) - q0);
            assert!(!v.is_empty());
        }
        BenchResult {
            queries: queries as u64,
            elapsed: mem.now(0) - t0,
            latency,
        }
    }
}

/// The LRANGE workload: many separate lists, range queries on random lists.
#[derive(Debug)]
pub struct LrangeBench {
    /// Number of lists.
    pub lists: usize,
    /// Total elements pushed (spread randomly across lists).
    pub elements: usize,
    /// Element payload size.
    pub elem_size: usize,
    /// RNG seed.
    pub seed: u64,
}

impl LrangeBench {
    /// List key for index `i`.
    pub fn key(i: usize) -> Vec<u8> {
        format!("mylist:{i:08}").into_bytes()
    }

    /// Populates: pushes `elements` random-sized payloads to random lists
    /// ("we randomly pushed 20 million elements to lists so that each list
    /// contains 200 elements on average").
    pub fn populate(&self, server: &mut RedisServer, mem: &mut dyn FarMemory) {
        let mut rng = SplitMix64::new(self.seed);
        let mut payload = vec![0u8; self.elem_size];
        for e in 0..self.elements {
            let list = rng.gen_range(self.lists as u64) as usize;
            payload.fill((e % 251) as u8);
            server.rpush(mem, 0, &Self::key(list), &payload);
        }
    }

    /// LRANGE_100 workload: fetch the front 100 elements of random lists.
    pub fn run(
        &self,
        server: &mut RedisServer,
        mem: &mut dyn FarMemory,
        queries: usize,
    ) -> BenchResult {
        let mut rng = SplitMix64::new(self.seed ^ 0x14A);
        let mut latency = LatencyHistogram::new();
        let t0 = mem.now(0);
        for _ in 0..queries {
            let list = rng.gen_range(self.lists as u64) as usize;
            let q0 = mem.now(0);
            let _ = server.lrange(mem, 0, &Self::key(list), 100);
            latency.record(mem.now(0) - q0);
        }
        BenchResult {
            queries: queries as u64,
            elapsed: mem.now(0) - t0,
            latency,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::farmem::{SystemKind, SystemSpec};
    use dilos_alloc::Heap;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn setup(bytes: u64, ratio: u32) -> (Box<dyn FarMemory>, RedisServer) {
        let mut mem = SystemSpec::for_working_set(SystemKind::DilosReadahead, bytes, ratio).boot();
        let base = mem.alloc(bytes as usize);
        let heap = Rc::new(RefCell::new(Heap::new(base, bytes)));
        let server = RedisServer::new(heap, mem.as_mut(), 8192);
        (mem, server)
    }

    #[test]
    fn get_workload_runs_and_measures() {
        let bench = RedisBench {
            keys: 64,
            sizes: ValueSizes::Fixed(4096),
            seed: 1,
        };
        let (mut mem, mut server) = setup(1 << 22, 25);
        let total = bench.populate(&mut server, mem.as_mut());
        assert_eq!(total, 64 * 4096);
        let r = bench.run_gets(&mut server, mem.as_mut(), 200);
        assert_eq!(r.queries, 200);
        assert!(r.qps() > 0.0);
        assert!(r.latency.quantile(0.99) >= r.latency.quantile(0.5));
    }

    #[test]
    fn mixed_sizes_cover_the_distribution() {
        let bench = RedisBench {
            keys: 60,
            sizes: ValueSizes::Mixed,
            seed: 2,
        };
        let (mut mem, mut server) = setup(1 << 24, 100);
        let total = bench.populate(&mut server, mem.as_mut());
        // Mean of {4,8,16,32,64,128} KiB is 42 KiB; 60 keys ≈ 2.5 MiB.
        assert!(total > 60 * 4 * 1024 && total < 60 * 128 * 1024);
        let r = bench.run_gets(&mut server, mem.as_mut(), 100);
        assert_eq!(r.queries, 100);
    }

    #[test]
    fn del_then_get_surviving() {
        let bench = RedisBench {
            keys: 100,
            sizes: ValueSizes::Fixed(128),
            seed: 3,
        };
        let (mut mem, mut server) = setup(1 << 22, 50);
        bench.populate(&mut server, mem.as_mut());
        let deleted = bench.run_dels(&mut server, mem.as_mut(), 70);
        assert_eq!(deleted.len(), 70);
        assert_eq!(server.dbsize(), 30);
        let r = bench.run_gets_surviving(&mut server, mem.as_mut(), &deleted, 50);
        assert_eq!(r.queries, 50);
    }

    #[test]
    fn lrange_workload_runs() {
        let bench = LrangeBench {
            lists: 10,
            elements: 600,
            elem_size: 64,
            seed: 4,
        };
        let (mut mem, mut server) = setup(1 << 22, 50);
        bench.populate(&mut server, mem.as_mut());
        let r = bench.run(&mut server, mem.as_mut(), 20);
        assert_eq!(r.queries, 20);
        assert!(r.qps() > 0.0);
    }
}
