//! The Redis-like server: a keyspace of strings and quicklists over far
//! memory, with guide hooks.
//!
//! The server executes the commands the evaluation drives — SET/GET/DEL for
//! the keyspace workloads and RPUSH/LRANGE for lists — against the
//! far-memory dict, SDS, and quicklist structures, allocating through the
//! bitmap [`Heap`] (so guided paging can see liveness). When an app-aware
//! [`RedisGuide`] is attached, the server fires its hooks before value
//! reads and list traversals, exactly where the paper's ELF-loader hooks
//! intercept real Redis.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use dilos_alloc::Heap;

use crate::farmem::FarMemory;
use crate::redis::dict::Dict;
use crate::redis::guide::RedisGuide;
use crate::redis::quicklist::{read_node, Quicklist};
use crate::redis::sds;

/// Per-command dispatch compute charge (ns): parse + command table lookup.
const CMD_NS: u64 = 150;

/// What a value address points at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ValueKind {
    String,
    List { zl_cap: u32 },
}

/// The server.
pub struct RedisServer {
    heap: Rc<RefCell<Heap>>,
    dict: Dict,
    /// Value type registry (Redis's robj type field, kept host-side).
    kinds: HashMap<u64, ValueKind>,
    guide: Option<Rc<RefCell<RedisGuide>>>,
    zl_cap: u32,
}

impl std::fmt::Debug for RedisServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RedisServer")
            .field("keys", &self.dict.len())
            .finish_non_exhaustive()
    }
}

impl RedisServer {
    /// Creates a server allocating from `heap`. `zl_cap` is the per-node
    /// ziplist capacity (8 KiB matches Redis's multi-page ziplists).
    pub fn new(heap: Rc<RefCell<Heap>>, mem: &mut dyn FarMemory, zl_cap: u32) -> Self {
        let dict = Dict::new(Rc::clone(&heap), mem, 16);
        Self {
            heap,
            dict,
            kinds: HashMap::new(),
            guide: None,
            zl_cap,
        }
    }

    /// Attaches the app-aware guide's hook side (the node registration is
    /// separate; see the bench harness).
    pub fn attach_guide(&mut self, guide: Rc<RefCell<RedisGuide>>) {
        self.guide = Some(guide);
    }

    /// The shared heap (for wiring the paging guide).
    pub fn heap(&self) -> Rc<RefCell<Heap>> {
        Rc::clone(&self.heap)
    }

    /// Number of keys.
    pub fn dbsize(&self) -> usize {
        self.dict.len()
    }

    /// SET key value.
    pub fn set(&mut self, mem: &mut dyn FarMemory, core: usize, key: &[u8], val: &[u8]) {
        mem.compute(core, CMD_NS);
        let sds_va = sds::sds_new(&self.heap, mem, core, val);
        self.kinds.insert(sds_va, ValueKind::String);
        if let Some(old) = self.dict.insert(mem, core, key, sds_va) {
            self.free_value(mem, core, old);
        }
    }

    /// GET key.
    pub fn get(&mut self, mem: &mut dyn FarMemory, core: usize, key: &[u8]) -> Option<Vec<u8>> {
        mem.compute(core, CMD_NS);
        let (_, val) = self.dict.find(mem, core, key)?;
        if self.kinds.get(&val) != Some(&ValueKind::String) {
            return None; // WRONGTYPE in real Redis.
        }
        if let Some(g) = &self.guide {
            g.borrow_mut().hook_get(val);
        }
        let data = sds::sds_read(mem, core, val);
        if let Some(g) = &self.guide {
            g.borrow_mut().hook_done();
        }
        Some(data)
    }

    /// DEL key; returns whether the key existed.
    pub fn del(&mut self, mem: &mut dyn FarMemory, core: usize, key: &[u8]) -> bool {
        mem.compute(core, CMD_NS);
        match self.dict.remove(mem, core, key) {
            Some(val) => {
                self.free_value(mem, core, val);
                true
            }
            None => false,
        }
    }

    /// RPUSH key element (creates the list on first push).
    pub fn rpush(&mut self, mem: &mut dyn FarMemory, core: usize, key: &[u8], elem: &[u8]) {
        mem.compute(core, CMD_NS);
        let header = match self.dict.find(mem, core, key) {
            Some((_, val)) if matches!(self.kinds.get(&val), Some(ValueKind::List { .. })) => val,
            Some(_) => panic!("WRONGTYPE: key holds a string"),
            None => {
                let ql = Quicklist::new(Rc::clone(&self.heap), mem, core, self.zl_cap);
                self.kinds.insert(
                    ql.header,
                    ValueKind::List {
                        zl_cap: self.zl_cap,
                    },
                );
                self.dict.insert(mem, core, key, ql.header);
                ql.header
            }
        };
        let ql = Quicklist {
            heap: Rc::clone(&self.heap),
            header,
            zl_cap: self.zl_cap,
        };
        ql.rpush(mem, core, elem);
    }

    /// LRANGE key 0 count-1.
    pub fn lrange(
        &mut self,
        mem: &mut dyn FarMemory,
        core: usize,
        key: &[u8],
        count: usize,
    ) -> Vec<Vec<u8>> {
        mem.compute(core, CMD_NS);
        let Some((_, val)) = self.dict.find(mem, core, key) else {
            return Vec::new();
        };
        let Some(&ValueKind::List { zl_cap }) = self.kinds.get(&val) else {
            return Vec::new();
        };
        let ql = Quicklist {
            heap: Rc::clone(&self.heap),
            header: val,
            zl_cap,
        };
        if let Some(g) = &self.guide {
            let head = ql.head(mem, core);
            g.borrow_mut().hook_lrange(head);
        }
        let out = ql.lrange(mem, core, count);
        if let Some(g) = &self.guide {
            g.borrow_mut().hook_done();
        }
        out
    }

    /// LLEN key.
    pub fn llen(&mut self, mem: &mut dyn FarMemory, core: usize, key: &[u8]) -> u64 {
        mem.compute(core, CMD_NS);
        match self.dict.find(mem, core, key) {
            Some((_, val)) if matches!(self.kinds.get(&val), Some(ValueKind::List { .. })) => {
                let ql = Quicklist {
                    heap: Rc::clone(&self.heap),
                    header: val,
                    zl_cap: self.zl_cap,
                };
                ql.len(mem, core)
            }
            _ => 0,
        }
    }

    fn free_value(&mut self, mem: &mut dyn FarMemory, core: usize, val: u64) {
        match self.kinds.remove(&val) {
            Some(ValueKind::String) | None => sds::sds_free(&self.heap, val),
            Some(ValueKind::List { zl_cap }) => {
                let ql = Quicklist {
                    heap: Rc::clone(&self.heap),
                    header: val,
                    zl_cap,
                };
                ql.destroy(mem, core);
            }
        }
    }

    /// Walks a list's node chain (diagnostics/tests).
    pub fn list_nodes(&mut self, mem: &mut dyn FarMemory, core: usize, key: &[u8]) -> usize {
        let Some((_, val)) = self.dict.find(mem, core, key) else {
            return 0;
        };
        let ql = Quicklist {
            heap: Rc::clone(&self.heap),
            header: val,
            zl_cap: self.zl_cap,
        };
        let mut n = 0;
        let mut va = ql.head(mem, core);
        while va != 0 {
            n += 1;
            va = read_node(mem, core, va).next;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::farmem::{SystemKind, SystemSpec};

    fn setup(bytes: u64) -> (Box<dyn FarMemory>, RedisServer) {
        let mut mem = SystemSpec::for_working_set(SystemKind::DilosReadahead, bytes, 100).boot();
        let base = mem.alloc(bytes as usize);
        let heap = Rc::new(RefCell::new(Heap::new(base, bytes)));
        let server = RedisServer::new(heap, mem.as_mut(), 1024);
        (mem, server)
    }

    #[test]
    fn set_get_del() {
        let (mut mem, mut s) = setup(1 << 22);
        s.set(mem.as_mut(), 0, b"k1", b"value one");
        s.set(mem.as_mut(), 0, b"k2", b"value two");
        assert_eq!(
            s.get(mem.as_mut(), 0, b"k1").as_deref(),
            Some(&b"value one"[..])
        );
        assert_eq!(
            s.get(mem.as_mut(), 0, b"k2").as_deref(),
            Some(&b"value two"[..])
        );
        assert!(s.get(mem.as_mut(), 0, b"k3").is_none());
        assert!(s.del(mem.as_mut(), 0, b"k1"));
        assert!(!s.del(mem.as_mut(), 0, b"k1"));
        assert!(s.get(mem.as_mut(), 0, b"k1").is_none());
        assert_eq!(s.dbsize(), 1);
    }

    #[test]
    fn set_overwrites_and_frees_old_value() {
        let (mut mem, mut s) = setup(1 << 22);
        let heap = s.heap();
        s.set(mem.as_mut(), 0, b"k", &[1u8; 1000]);
        let live1 = heap.borrow().stats().live_bytes;
        s.set(mem.as_mut(), 0, b"k", &[2u8; 1000]);
        let live2 = heap.borrow().stats().live_bytes;
        assert_eq!(live1, live2, "overwrite must not leak");
        assert_eq!(s.get(mem.as_mut(), 0, b"k"), Some(vec![2u8; 1000]));
    }

    #[test]
    fn list_commands() {
        let (mut mem, mut s) = setup(1 << 22);
        for i in 0..250 {
            s.rpush(
                mem.as_mut(),
                0,
                b"mylist",
                format!("item-{i:04}").as_bytes(),
            );
        }
        assert_eq!(s.llen(mem.as_mut(), 0, b"mylist"), 250);
        assert!(
            s.list_nodes(mem.as_mut(), 0, b"mylist") > 1,
            "multi-node list"
        );
        let front = s.lrange(mem.as_mut(), 0, b"mylist", 100);
        assert_eq!(front.len(), 100);
        for (i, e) in front.iter().enumerate() {
            assert_eq!(e, format!("item-{i:04}").as_bytes());
        }
        assert!(s.del(mem.as_mut(), 0, b"mylist"));
        assert!(s.lrange(mem.as_mut(), 0, b"mylist", 10).is_empty());
    }

    #[test]
    fn large_values_survive_memory_pressure() {
        let mut mem = SystemSpec::for_working_set(SystemKind::DilosReadahead, 1 << 23, 13).boot();
        let base = mem.alloc(1 << 23);
        let heap = Rc::new(RefCell::new(Heap::new(base, 1 << 23)));
        let mut s = RedisServer::new(heap, mem.as_mut(), 8192);
        // 64 KiB values × 64 keys = 4 MiB working set, 13 % local.
        for i in 0..64u32 {
            let val = vec![(i % 251) as u8; 64 * 1024];
            s.set(mem.as_mut(), 0, format!("big:{i}").as_bytes(), &val);
        }
        for i in 0..64u32 {
            let got = s
                .get(mem.as_mut(), 0, format!("big:{i}").as_bytes())
                .unwrap();
            assert_eq!(got.len(), 64 * 1024);
            assert!(got.iter().all(|&b| b == (i % 251) as u8), "key big:{i}");
        }
    }
}
