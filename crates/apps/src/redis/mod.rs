//! A Redis-like in-memory key-value store over far memory (§6.2, §6.3).
//!
//! Implements the pieces of Redis the paper's evaluation exercises, with the
//! same memory layouts (the layouts are what the app-aware guides exploit):
//!
//! - [`sds`] — Simple Dynamic Strings (length header + payload),
//! - [`dict`] — the chained hash table with incremental rehash,
//! - [`quicklist`] — lists as linked ziplists,
//! - [`server`] — SET/GET/DEL/RPUSH/LRANGE command execution,
//! - [`guide`] — the app-aware prefetch guide for GET and LRANGE,
//! - `bench` (module) — the redis-benchmark-style workload drivers.

pub mod bench;
pub mod dict;
pub mod guide;
pub mod quicklist;
pub mod sds;
pub mod server;

pub use bench::{BenchResult, LrangeBench, RedisBench, ValueSizes};
pub use guide::{RedisGuide, RedisGuideStats};
pub use server::RedisServer;
