//! The Redis dict: a chained hash table with incremental rehash, in far
//! memory.
//!
//! Redis's keyspace is a `dict`: two bucket tables (for incremental
//! rehashing), chains of 32-byte entries, and a rehash index that migrates
//! one bucket per operation. Pointer-chasing through bucket chains is the
//! "highly irregular memory access pattern" §6.2 attributes to in-memory
//! key-value stores.
//!
//! Entry layout (32 bytes): `[next: u64][key_sds: u64][val: u64][hash: u64]`.

use std::cell::RefCell;
use std::rc::Rc;

use crate::farmem::FarMemory;
use crate::redis::sds;
use dilos_alloc::Heap;

const ENTRY_SIZE: usize = 32;

/// FNV-1a, the stand-in for Redis's siphash (deterministic here).
pub fn hash_key(key: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[derive(Debug, Clone, Copy)]
struct Table {
    buckets: u64,
    size: usize,
}

/// The far-memory dict.
#[derive(Debug)]
pub struct Dict {
    heap: Rc<RefCell<Heap>>,
    t0: Table,
    /// Rehash target (present while rehashing).
    t1: Option<Table>,
    rehash_idx: usize,
    len: usize,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    next: u64,
    key: u64,
    val: u64,
    hash: u64,
}

fn read_entry(mem: &mut dyn FarMemory, core: usize, va: u64) -> Entry {
    let mut b = [0u8; ENTRY_SIZE];
    mem.read(core, va, &mut b);
    Entry {
        next: u64::from_le_bytes(b[0..8].try_into().expect("8")),
        key: u64::from_le_bytes(b[8..16].try_into().expect("8")),
        val: u64::from_le_bytes(b[16..24].try_into().expect("8")),
        hash: u64::from_le_bytes(b[24..32].try_into().expect("8")),
    }
}

fn write_entry(mem: &mut dyn FarMemory, core: usize, va: u64, e: &Entry) {
    let mut b = [0u8; ENTRY_SIZE];
    b[0..8].copy_from_slice(&e.next.to_le_bytes());
    b[8..16].copy_from_slice(&e.key.to_le_bytes());
    b[16..24].copy_from_slice(&e.val.to_le_bytes());
    b[24..32].copy_from_slice(&e.hash.to_le_bytes());
    mem.write(core, va, &b);
}

impl Dict {
    /// Creates a dict with `initial` buckets (rounded to a power of two).
    pub fn new(heap: Rc<RefCell<Heap>>, mem: &mut dyn FarMemory, initial: usize) -> Self {
        let size = initial.next_power_of_two().max(4);
        let buckets = Self::alloc_table(&heap, mem, size);
        Self {
            heap,
            t0: Table { buckets, size },
            t1: None,
            rehash_idx: 0,
            len: 0,
        }
    }

    fn alloc_table(heap: &Rc<RefCell<Heap>>, mem: &mut dyn FarMemory, size: usize) -> u64 {
        let va = heap
            .borrow_mut()
            .malloc(size * 8)
            .expect("heap exhausted allocating dict table");
        // Zero the table (null bucket heads).
        let zeros = vec![0u8; 4096.min(size * 8)];
        let mut off = 0usize;
        while off < size * 8 {
            let n = zeros.len().min(size * 8 - off);
            mem.write(0, va + off as u64, &zeros[..n]);
            off += n;
        }
        va
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the dict holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether an incremental rehash is in progress.
    pub fn rehashing(&self) -> bool {
        self.t1.is_some()
    }

    fn bucket_addr(t: &Table, idx: usize) -> u64 {
        t.buckets + (idx * 8) as u64
    }

    /// Migrates up to `steps` buckets of an in-progress rehash — the
    /// incremental work Redis piggybacks on every command.
    fn rehash_step(&mut self, mem: &mut dyn FarMemory, core: usize, steps: usize) {
        let Some(t1) = self.t1 else { return };
        for _ in 0..steps {
            if self.rehash_idx >= self.t0.size {
                // Rehash complete: swap tables, free the old one.
                self.heap
                    .borrow_mut()
                    .free(self.t0.buckets)
                    .expect("old dict table is live");
                self.t0 = t1;
                self.t1 = None;
                self.rehash_idx = 0;
                return;
            }
            let mut cur = mem.read_u64(core, Self::bucket_addr(&self.t0, self.rehash_idx));
            while cur != 0 {
                let e = read_entry(mem, core, cur);
                let idx = (e.hash as usize) & (t1.size - 1);
                let head_addr = Self::bucket_addr(&t1, idx);
                let head = mem.read_u64(core, head_addr);
                write_entry(mem, core, cur, &Entry { next: head, ..e });
                mem.write_u64(core, head_addr, cur);
                cur = e.next;
            }
            mem.write_u64(core, Self::bucket_addr(&self.t0, self.rehash_idx), 0);
            self.rehash_idx += 1;
        }
    }

    fn maybe_grow(&mut self, mem: &mut dyn FarMemory, _core: usize) {
        if self.t1.is_none() && self.len >= self.t0.size {
            let size = self.t0.size * 2;
            let buckets = Self::alloc_table(&self.heap, mem, size);
            self.t1 = Some(Table { buckets, size });
            self.rehash_idx = 0;
        }
    }

    /// Finds `key`, returning `(entry_va, value_va)`.
    pub fn find(&mut self, mem: &mut dyn FarMemory, core: usize, key: &[u8]) -> Option<(u64, u64)> {
        self.rehash_step(mem, core, 1);
        let h = hash_key(key);
        mem.compute(core, 30); // Hashing + dispatch.
        let tables: Vec<Table> = std::iter::once(self.t0).chain(self.t1).collect();
        for t in tables {
            let idx = (h as usize) & (t.size - 1);
            let mut cur = mem.read_u64(core, Self::bucket_addr(&t, idx));
            while cur != 0 {
                let e = read_entry(mem, core, cur);
                if e.hash == h && sds::sds_eq(mem, core, e.key, key) {
                    return Some((cur, e.val));
                }
                cur = e.next;
            }
        }
        None
    }

    /// Inserts `key → val`, replacing any existing binding.
    ///
    /// Returns the previous value address if the key existed.
    pub fn insert(
        &mut self,
        mem: &mut dyn FarMemory,
        core: usize,
        key: &[u8],
        val: u64,
    ) -> Option<u64> {
        if let Some((entry_va, old_val)) = self.find(mem, core, key) {
            let e = read_entry(mem, core, entry_va);
            write_entry(mem, core, entry_va, &Entry { val, ..e });
            return Some(old_val);
        }
        self.maybe_grow(mem, core);
        self.rehash_step(mem, core, 1);
        let h = hash_key(key);
        let target = self.t1.unwrap_or(self.t0);
        let idx = (h as usize) & (target.size - 1);
        let head_addr = Self::bucket_addr(&target, idx);
        let head = mem.read_u64(core, head_addr);
        let key_sds = sds::sds_new(&self.heap, mem, core, key);
        let entry_va = self
            .heap
            .borrow_mut()
            .malloc(ENTRY_SIZE)
            .expect("heap exhausted allocating dict entry");
        write_entry(
            mem,
            core,
            entry_va,
            &Entry {
                next: head,
                key: key_sds,
                val,
                hash: h,
            },
        );
        mem.write_u64(core, head_addr, entry_va);
        self.len += 1;
        None
    }

    /// Removes `key`, returning its value address.
    pub fn remove(&mut self, mem: &mut dyn FarMemory, core: usize, key: &[u8]) -> Option<u64> {
        self.rehash_step(mem, core, 1);
        let h = hash_key(key);
        let tables: Vec<Table> = std::iter::once(self.t0).chain(self.t1).collect();
        for t in tables {
            let idx = (h as usize) & (t.size - 1);
            let head_addr = Self::bucket_addr(&t, idx);
            let mut prev: Option<u64> = None;
            let mut cur = mem.read_u64(core, head_addr);
            while cur != 0 {
                let e = read_entry(mem, core, cur);
                if e.hash == h && sds::sds_eq(mem, core, e.key, key) {
                    match prev {
                        None => mem.write_u64(core, head_addr, e.next),
                        Some(p) => {
                            let pe = read_entry(mem, core, p);
                            write_entry(mem, core, p, &Entry { next: e.next, ..pe });
                        }
                    }
                    sds::sds_free(&self.heap, e.key);
                    self.heap
                        .borrow_mut()
                        .free(cur)
                        .expect("dict entry is live");
                    self.len -= 1;
                    return Some(e.val);
                }
                prev = Some(cur);
                cur = e.next;
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::farmem::{SystemKind, SystemSpec};

    fn setup() -> (Box<dyn FarMemory>, Rc<RefCell<Heap>>) {
        let mut mem = SystemSpec::for_working_set(SystemKind::DilosReadahead, 1 << 22, 100).boot();
        let base = mem.alloc(1 << 22);
        (mem, Rc::new(RefCell::new(Heap::new(base, 1 << 22))))
    }

    #[test]
    fn insert_find_remove() {
        let (mut mem, heap) = setup();
        let mut d = Dict::new(Rc::clone(&heap), mem.as_mut(), 4);
        assert!(d.insert(mem.as_mut(), 0, b"alpha", 111).is_none());
        assert!(d.insert(mem.as_mut(), 0, b"beta", 222).is_none());
        assert_eq!(d.len(), 2);
        assert_eq!(d.find(mem.as_mut(), 0, b"alpha").map(|(_, v)| v), Some(111));
        assert_eq!(d.find(mem.as_mut(), 0, b"beta").map(|(_, v)| v), Some(222));
        assert!(d.find(mem.as_mut(), 0, b"gamma").is_none());
        assert_eq!(d.remove(mem.as_mut(), 0, b"alpha"), Some(111));
        assert!(d.find(mem.as_mut(), 0, b"alpha").is_none());
        assert_eq!(d.len(), 1);
        assert!(d.remove(mem.as_mut(), 0, b"alpha").is_none());
    }

    #[test]
    fn replace_returns_old_value() {
        let (mut mem, heap) = setup();
        let mut d = Dict::new(Rc::clone(&heap), mem.as_mut(), 4);
        assert!(d.insert(mem.as_mut(), 0, b"k", 1).is_none());
        assert_eq!(d.insert(mem.as_mut(), 0, b"k", 2), Some(1));
        assert_eq!(d.len(), 1);
        assert_eq!(d.find(mem.as_mut(), 0, b"k").map(|(_, v)| v), Some(2));
    }

    #[test]
    fn grows_with_incremental_rehash_preserving_entries() {
        let (mut mem, heap) = setup();
        let mut d = Dict::new(Rc::clone(&heap), mem.as_mut(), 4);
        let n = 500u64;
        for i in 0..n {
            let key = format!("key:{i:06}");
            assert!(d.insert(mem.as_mut(), 0, key.as_bytes(), i).is_none());
        }
        assert_eq!(d.len(), n as usize);
        // Rehash may be mid-flight; every key must still resolve.
        for i in 0..n {
            let key = format!("key:{i:06}");
            assert_eq!(
                d.find(mem.as_mut(), 0, key.as_bytes()).map(|(_, v)| v),
                Some(i),
                "{key}"
            );
        }
        // Drive rehash to completion via more ops.
        for _ in 0..2_000 {
            let _ = d.find(mem.as_mut(), 0, b"nonexistent");
        }
        assert!(!d.rehashing(), "rehash must eventually complete");
        for i in 0..n {
            let key = format!("key:{i:06}");
            assert!(d.find(mem.as_mut(), 0, key.as_bytes()).is_some());
        }
    }

    #[test]
    fn collisions_chain_correctly() {
        let (mut mem, heap) = setup();
        // A tiny table forces chains.
        let mut d = Dict::new(Rc::clone(&heap), mem.as_mut(), 4);
        for i in 0..32u64 {
            d.insert(mem.as_mut(), 0, format!("c{i}").as_bytes(), i);
        }
        for i in 0..32u64 {
            assert_eq!(
                d.find(mem.as_mut(), 0, format!("c{i}").as_bytes())
                    .map(|(_, v)| v),
                Some(i)
            );
        }
        // Remove every other entry; the rest must survive the unlinking.
        for i in (0..32u64).step_by(2) {
            assert_eq!(
                d.remove(mem.as_mut(), 0, format!("c{i}").as_bytes()),
                Some(i)
            );
        }
        for i in 0..32u64 {
            let found = d.find(mem.as_mut(), 0, format!("c{i}").as_bytes());
            assert_eq!(found.is_some(), i % 2 == 1, "c{i}");
        }
    }

    #[test]
    fn hash_is_deterministic_and_spread() {
        assert_eq!(hash_key(b"abc"), hash_key(b"abc"));
        assert_ne!(hash_key(b"abc"), hash_key(b"abd"));
        // Rough spread check over a small table.
        let mut buckets = [0u32; 16];
        for i in 0..1_000 {
            buckets[(hash_key(format!("k{i}").as_bytes()) as usize) & 15] += 1;
        }
        assert!(buckets.iter().all(|&c| c > 20), "{buckets:?}");
    }
}
