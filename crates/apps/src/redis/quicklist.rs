//! Quicklist: Redis's list encoding — a linked list of ziplists — in far
//! memory.
//!
//! "The LRANGE query uses a quicklist data structure, which stores strings
//! in a linked list of ziplists" (§6.3). The traversal is the paper's
//! pointer-chasing showcase (Figures 5 and 11): nodes live on different
//! pages, each node points at a multi-page ziplist, and general-purpose
//! prefetchers can't follow.
//!
//! Layouts (little-endian):
//!
//! ```text
//! quicklist header (24 B): [head: u64][tail: u64][len: u64]
//! node (32 B):             [next: u64][prev: u64][zl: u64][zl_bytes: u32][count: u32]
//! ziplist (zl_cap B):      [used: u32][count: u32] then entries [len: u32][bytes…]
//! ```

use std::cell::RefCell;
use std::rc::Rc;

use crate::farmem::FarMemory;
use dilos_alloc::Heap;

/// Quicklist header size.
pub const QL_HDR: usize = 24;
/// Node struct size (what the guide subpage-fetches).
pub const NODE_SIZE: usize = 32;
/// Ziplist header size.
pub const ZL_HDR: usize = 8;

/// A decoded node struct.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Node {
    /// Next node address (0 = none).
    pub next: u64,
    /// Previous node address (0 = none).
    pub prev: u64,
    /// Ziplist buffer address.
    pub zl: u64,
    /// Ziplist capacity in bytes.
    pub zl_bytes: u32,
    /// Entries stored in this node's ziplist.
    pub count: u32,
}

/// Reads a node struct.
pub fn read_node(mem: &mut dyn FarMemory, core: usize, va: u64) -> Node {
    let mut b = [0u8; NODE_SIZE];
    mem.read(core, va, &mut b);
    decode_node(&b)
}

/// Decodes a node struct from raw bytes (used by the prefetch guide on
/// subpage payloads).
pub fn decode_node(b: &[u8]) -> Node {
    Node {
        next: u64::from_le_bytes(b[0..8].try_into().expect("8")),
        prev: u64::from_le_bytes(b[8..16].try_into().expect("8")),
        zl: u64::from_le_bytes(b[16..24].try_into().expect("8")),
        zl_bytes: u32::from_le_bytes(b[24..28].try_into().expect("4")),
        count: u32::from_le_bytes(b[28..32].try_into().expect("4")),
    }
}

fn write_node(mem: &mut dyn FarMemory, core: usize, va: u64, n: &Node) {
    let mut b = [0u8; NODE_SIZE];
    b[0..8].copy_from_slice(&n.next.to_le_bytes());
    b[8..16].copy_from_slice(&n.prev.to_le_bytes());
    b[16..24].copy_from_slice(&n.zl.to_le_bytes());
    b[24..28].copy_from_slice(&n.zl_bytes.to_le_bytes());
    b[28..32].copy_from_slice(&n.count.to_le_bytes());
    mem.write(core, va, &b);
}

/// The far-memory quicklist.
#[derive(Debug, Clone)]
pub struct Quicklist {
    /// The allocator the list's nodes and ziplists come from.
    pub heap: Rc<RefCell<Heap>>,
    /// Address of the 24-byte header.
    pub header: u64,
    /// Ziplist capacity per node (Redis's `list-max-ziplist-size` analogue;
    /// the default 8 KiB makes ziplists span pages as in Figure 11).
    pub zl_cap: u32,
}

impl Quicklist {
    /// Creates an empty quicklist with `zl_cap`-byte ziplists.
    pub fn new(heap: Rc<RefCell<Heap>>, mem: &mut dyn FarMemory, core: usize, zl_cap: u32) -> Self {
        let header = heap
            .borrow_mut()
            .malloc(QL_HDR)
            .expect("heap exhausted allocating quicklist header");
        mem.write(core, header, &[0u8; QL_HDR]);
        Self {
            heap,
            header,
            zl_cap,
        }
    }

    fn read_header(&self, mem: &mut dyn FarMemory, core: usize) -> (u64, u64, u64) {
        let mut b = [0u8; QL_HDR];
        mem.read(core, self.header, &mut b);
        (
            u64::from_le_bytes(b[0..8].try_into().expect("8")),
            u64::from_le_bytes(b[8..16].try_into().expect("8")),
            u64::from_le_bytes(b[16..24].try_into().expect("8")),
        )
    }

    fn write_header(&self, mem: &mut dyn FarMemory, core: usize, head: u64, tail: u64, len: u64) {
        let mut b = [0u8; QL_HDR];
        b[0..8].copy_from_slice(&head.to_le_bytes());
        b[8..16].copy_from_slice(&tail.to_le_bytes());
        b[16..24].copy_from_slice(&len.to_le_bytes());
        mem.write(core, self.header, &b);
    }

    /// The head node address (0 when empty) — what the LRANGE hook hands
    /// the prefetch guide.
    pub fn head(&self, mem: &mut dyn FarMemory, core: usize) -> u64 {
        self.read_header(mem, core).0
    }

    /// Total elements.
    pub fn len(&self, mem: &mut dyn FarMemory, core: usize) -> u64 {
        self.read_header(mem, core).2
    }

    /// True when the list holds no elements.
    pub fn is_empty(&self, mem: &mut dyn FarMemory, core: usize) -> bool {
        self.len(mem, core) == 0
    }

    /// Appends `elem` at the tail (RPUSH).
    pub fn rpush(&self, mem: &mut dyn FarMemory, core: usize, elem: &[u8]) {
        let need = 4 + elem.len();
        assert!(
            need + ZL_HDR <= self.zl_cap as usize,
            "element larger than a ziplist"
        );
        let (head, tail, len) = self.read_header(mem, core);
        let mut target = 0u64;
        if tail != 0 {
            let node = read_node(mem, core, tail);
            let used = mem.read_u32(core, node.zl) as usize;
            if ZL_HDR + used + need <= node.zl_bytes as usize {
                // Append into the tail ziplist.
                let entry_at = node.zl + (ZL_HDR + used) as u64;
                mem.write_u32(core, entry_at, elem.len() as u32);
                mem.write(core, entry_at + 4, elem);
                mem.write_u32(core, node.zl, (used + need) as u32);
                let zl_count = mem.read_u32(core, node.zl + 4);
                mem.write_u32(core, node.zl + 4, zl_count + 1);
                write_node(
                    mem,
                    core,
                    tail,
                    &Node {
                        count: node.count + 1,
                        ..node
                    },
                );
                self.write_header(mem, core, head, tail, len + 1);
                return;
            }
            target = tail;
        }
        // New node + ziplist.
        let zl = self
            .heap
            .borrow_mut()
            .malloc(self.zl_cap as usize)
            .expect("heap exhausted allocating ziplist");
        mem.write_u32(core, zl, need as u32);
        mem.write_u32(core, zl + 4, 1);
        mem.write_u32(core, zl + ZL_HDR as u64, elem.len() as u32);
        mem.write(core, zl + ZL_HDR as u64 + 4, elem);
        let node_va = self
            .heap
            .borrow_mut()
            .malloc(NODE_SIZE)
            .expect("heap exhausted allocating quicklist node");
        write_node(
            mem,
            core,
            node_va,
            &Node {
                next: 0,
                prev: target,
                zl,
                zl_bytes: self.zl_cap,
                count: 1,
            },
        );
        if target != 0 {
            let t = read_node(mem, core, target);
            write_node(mem, core, target, &Node { next: node_va, ..t });
            self.write_header(mem, core, head, node_va, len + 1);
        } else {
            self.write_header(mem, core, node_va, node_va, len + 1);
        }
    }

    /// Returns the first `count` elements (LRANGE 0 count-1).
    pub fn lrange(&self, mem: &mut dyn FarMemory, core: usize, count: usize) -> Vec<Vec<u8>> {
        let mut out = Vec::with_capacity(count);
        let mut node_va = self.head(mem, core);
        while node_va != 0 && out.len() < count {
            let node = read_node(mem, core, node_va);
            let mut off = ZL_HDR as u64;
            for _ in 0..node.count {
                if out.len() >= count {
                    break;
                }
                let elen = mem.read_u32(core, node.zl + off) as usize;
                let mut data = vec![0u8; elen];
                mem.read(core, node.zl + off + 4, &mut data);
                out.push(data);
                off += 4 + elen as u64;
            }
            node_va = node.next;
        }
        out
    }

    /// Frees the whole list (nodes, ziplists, header).
    pub fn destroy(&self, mem: &mut dyn FarMemory, core: usize) {
        let mut node_va = self.head(mem, core);
        while node_va != 0 {
            let node = read_node(mem, core, node_va);
            self.heap.borrow_mut().free(node.zl).expect("ziplist live");
            self.heap.borrow_mut().free(node_va).expect("node live");
            node_va = node.next;
        }
        self.heap
            .borrow_mut()
            .free(self.header)
            .expect("header live");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::farmem::{SystemKind, SystemSpec};

    fn setup() -> (Box<dyn FarMemory>, Rc<RefCell<Heap>>) {
        let mut mem = SystemSpec::for_working_set(SystemKind::DilosReadahead, 1 << 22, 100).boot();
        let base = mem.alloc(1 << 22);
        (mem, Rc::new(RefCell::new(Heap::new(base, 1 << 22))))
    }

    #[test]
    fn rpush_lrange_roundtrip() {
        let (mut mem, heap) = setup();
        let ql = Quicklist::new(Rc::clone(&heap), mem.as_mut(), 0, 512);
        for i in 0..50 {
            ql.rpush(mem.as_mut(), 0, format!("element-{i:03}").as_bytes());
        }
        assert_eq!(ql.len(mem.as_mut(), 0), 50);
        let got = ql.lrange(mem.as_mut(), 0, 10);
        assert_eq!(got.len(), 10);
        for (i, e) in got.iter().enumerate() {
            assert_eq!(e, format!("element-{i:03}").as_bytes());
        }
        // Count past the end clamps.
        assert_eq!(ql.lrange(mem.as_mut(), 0, 100).len(), 50);
    }

    #[test]
    fn small_ziplists_force_multiple_nodes() {
        let (mut mem, heap) = setup();
        // 128-byte ziplists with ~16-byte entries: ~7 entries per node.
        let ql = Quicklist::new(Rc::clone(&heap), mem.as_mut(), 0, 128);
        for i in 0..40 {
            ql.rpush(mem.as_mut(), 0, format!("e{i:010}").as_bytes());
        }
        // Walk the node chain and count.
        let mut nodes = 0;
        let mut elems = 0;
        let mut va = ql.head(mem.as_mut(), 0);
        while va != 0 {
            let n = read_node(mem.as_mut(), 0, va);
            nodes += 1;
            elems += n.count;
            va = n.next;
        }
        assert!(nodes >= 4, "expected several nodes, got {nodes}");
        assert_eq!(elems, 40);
        // Order is preserved across node boundaries.
        let got = ql.lrange(mem.as_mut(), 0, 40);
        for (i, e) in got.iter().enumerate() {
            assert_eq!(e, format!("e{i:010}").as_bytes());
        }
    }

    #[test]
    fn destroy_releases_all_memory() {
        let (mut mem, heap) = setup();
        let before = heap.borrow().stats().live_bytes;
        let ql = Quicklist::new(Rc::clone(&heap), mem.as_mut(), 0, 256);
        for i in 0..30 {
            ql.rpush(mem.as_mut(), 0, format!("x{i}").as_bytes());
        }
        assert!(heap.borrow().stats().live_bytes > before);
        ql.destroy(mem.as_mut(), 0);
        assert_eq!(heap.borrow().stats().live_bytes, before);
    }

    #[test]
    fn node_codec_roundtrips() {
        let n = Node {
            next: 0xAA,
            prev: 0xBB,
            zl: 0xCC,
            zl_bytes: 8_192,
            count: 7,
        };
        let mut b = [0u8; NODE_SIZE];
        b[0..8].copy_from_slice(&n.next.to_le_bytes());
        b[8..16].copy_from_slice(&n.prev.to_le_bytes());
        b[16..24].copy_from_slice(&n.zl.to_le_bytes());
        b[24..28].copy_from_slice(&n.zl_bytes.to_le_bytes());
        b[28..32].copy_from_slice(&n.count.to_le_bytes());
        assert_eq!(decode_node(&b), n);
    }

    #[test]
    #[should_panic(expected = "element larger than a ziplist")]
    fn oversized_elements_are_rejected() {
        let (mut mem, heap) = setup();
        let ql = Quicklist::new(Rc::clone(&heap), mem.as_mut(), 0, 64);
        ql.rpush(mem.as_mut(), 0, &[0u8; 128]);
    }
}
