//! Simple Dynamic Strings in far memory.
//!
//! Redis stores keys and string values as SDS: a small header carrying the
//! length, followed by the bytes. The app-aware GET prefetcher (§6.3) leans
//! on exactly this layout: "Redis's SDS consists of a header and data … the
//! length information is helpful for the prefetcher to decide the number of
//! pages to prefetch."
//!
//! Layout (va points at the header):
//!
//! ```text
//! [len: u32 LE][alloc: u32 LE][data bytes …]
//! ```

use std::cell::RefCell;
use std::rc::Rc;

use crate::farmem::FarMemory;
use dilos_alloc::Heap;

/// Header size in bytes.
pub const SDS_HDR: usize = 8;

/// Allocates an SDS holding `data`; returns its address.
///
/// # Panics
///
/// Panics if the heap is exhausted (size the DDC region for the workload).
pub fn sds_new(heap: &Rc<RefCell<Heap>>, mem: &mut dyn FarMemory, core: usize, data: &[u8]) -> u64 {
    let total = SDS_HDR + data.len();
    let va = heap
        .borrow_mut()
        .malloc(total)
        .expect("heap exhausted: grow the DDC region");
    let mut hdr = [0u8; SDS_HDR];
    hdr[..4].copy_from_slice(&(data.len() as u32).to_le_bytes());
    hdr[4..].copy_from_slice(&(total as u32).to_le_bytes());
    mem.write(core, va, &hdr);
    if !data.is_empty() {
        mem.write(core, va + SDS_HDR as u64, data);
    }
    va
}

/// Reads an SDS's length without touching its payload.
pub fn sds_len(mem: &mut dyn FarMemory, core: usize, va: u64) -> usize {
    mem.read_u32(core, va) as usize
}

/// Reads an SDS's payload.
pub fn sds_read(mem: &mut dyn FarMemory, core: usize, va: u64) -> Vec<u8> {
    let len = sds_len(mem, core, va);
    let mut data = vec![0u8; len];
    if len > 0 {
        mem.read(core, va + SDS_HDR as u64, &mut data);
    }
    data
}

/// Compares an SDS's payload against `expected` (short-circuits on length).
pub fn sds_eq(mem: &mut dyn FarMemory, core: usize, va: u64, expected: &[u8]) -> bool {
    if sds_len(mem, core, va) != expected.len() {
        return false;
    }
    sds_read(mem, core, va) == expected
}

/// Frees an SDS.
pub fn sds_free(heap: &Rc<RefCell<Heap>>, va: u64) {
    heap.borrow_mut()
        .free(va)
        .expect("SDS address is a live allocation");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::farmem::{SystemKind, SystemSpec};
    use dilos_core::DDC_BASE;

    fn setup() -> (Box<dyn FarMemory>, Rc<RefCell<Heap>>) {
        let mut mem = SystemSpec::for_working_set(SystemKind::DilosReadahead, 1 << 20, 100).boot();
        let base = mem.alloc(1 << 20);
        assert_eq!(base, DDC_BASE);
        (mem, Rc::new(RefCell::new(Heap::new(base, 1 << 20))))
    }

    #[test]
    fn roundtrip_and_length() {
        let (mut mem, heap) = setup();
        let va = sds_new(&heap, mem.as_mut(), 0, b"hello far memory");
        assert_eq!(sds_len(mem.as_mut(), 0, va), 16);
        assert_eq!(sds_read(mem.as_mut(), 0, va), b"hello far memory");
        assert!(sds_eq(mem.as_mut(), 0, va, b"hello far memory"));
        assert!(!sds_eq(mem.as_mut(), 0, va, b"hello"));
        assert!(!sds_eq(mem.as_mut(), 0, va, b"hello far memorY"));
        sds_free(&heap, va);
    }

    #[test]
    fn empty_string_works() {
        let (mut mem, heap) = setup();
        let va = sds_new(&heap, mem.as_mut(), 0, b"");
        assert_eq!(sds_len(mem.as_mut(), 0, va), 0);
        assert_eq!(sds_read(mem.as_mut(), 0, va), Vec::<u8>::new());
    }

    #[test]
    fn large_values_span_pages() {
        let (mut mem, heap) = setup();
        let data: Vec<u8> = (0..20_000).map(|i| (i % 253) as u8).collect();
        let va = sds_new(&heap, mem.as_mut(), 0, &data);
        assert_eq!(sds_read(mem.as_mut(), 0, va), data);
    }
}
