//! K-means clustering over far memory (Figure 7(b)).
//!
//! "The k-means clustering workload uses Scikit-learn to classify randomly
//! generated 15M integers into 10 clusters." This is Lloyd's algorithm over
//! a far-memory point array plus a far-memory assignment array — the same
//! two-array sweep scikit-learn's `KMeans` performs, whose mixed
//! read/write pattern stresses page reclamation (the paper's explanation
//! for Fastswap's 2.71× gap at 12.5 % local memory).

use crate::farmem::{FarArray, FarMemory};
use dilos_sim::SplitMix64;

/// Per-point-per-centroid distance compute charge (ns).
const DIST_NS: u64 = 1;

/// The k-means workload.
#[derive(Debug, Clone, Copy)]
pub struct KmeansWorkload {
    /// Number of one-dimensional integer points.
    pub points: usize,
    /// Number of clusters (the paper uses 10).
    pub k: usize,
    /// Lloyd iterations (scikit-learn default convergence is bounded).
    pub max_iters: usize,
    /// RNG seed.
    pub seed: u64,
}

/// Result of a k-means run.
#[derive(Debug, Clone)]
pub struct KmeansResult {
    /// Final centroids.
    pub centroids: Vec<f64>,
    /// Iterations executed.
    pub iterations: usize,
    /// Virtual elapsed time.
    pub elapsed: u64,
}

impl KmeansWorkload {
    /// Allocates and fills the point array.
    pub fn populate(&self, mem: &mut dyn FarMemory) -> FarArray {
        let arr = FarArray::new(mem, self.points);
        let mut rng = SplitMix64::new(self.seed);
        let mut chunk = Vec::with_capacity(512);
        let mut i = 0usize;
        while i < self.points {
            chunk.clear();
            let n = 512.min(self.points - i);
            for _ in 0..n {
                chunk.push(rng.gen_range(1_000_000));
            }
            arr.write_range(mem, 0, i, &chunk);
            i += n;
        }
        arr
    }

    /// Runs Lloyd's algorithm to convergence (or `max_iters`).
    pub fn run(&self, mem: &mut dyn FarMemory, points: FarArray) -> KmeansResult {
        let t0 = mem.now(0);
        let assign = FarArray::new(mem, self.points);
        let mut rng = SplitMix64::new(self.seed ^ 0xC0FFEE);
        // k-means++-ish seeding: random distinct samples.
        let mut centroids: Vec<f64> = (0..self.k)
            .map(|_| {
                let i = rng.gen_range(self.points as u64) as usize;
                points.get(mem, 0, i) as f64
            })
            .collect();
        let mut iterations = 0;
        for _ in 0..self.max_iters {
            iterations += 1;
            let mut sums = vec![0f64; self.k];
            let mut counts = vec![0u64; self.k];
            let mut changed = 0u64;
            let mut buf = vec![0u64; 512];
            let mut i = 0usize;
            while i < self.points {
                let n = 512.min(self.points - i);
                points.read_range(mem, 0, i, &mut buf[..n]);
                for (j, &p) in buf[..n].iter().enumerate() {
                    let x = p as f64;
                    let mut best = 0usize;
                    let mut best_d = f64::MAX;
                    for (c, &ctr) in centroids.iter().enumerate() {
                        let d = (x - ctr) * (x - ctr);
                        if d < best_d {
                            best_d = d;
                            best = c;
                        }
                    }
                    mem.compute(0, DIST_NS * self.k as u64);
                    sums[best] += x;
                    counts[best] += 1;
                    let idx = i + j;
                    let old = assign.get(mem, 0, idx);
                    if old != best as u64 {
                        assign.set(mem, 0, idx, best as u64);
                        changed += 1;
                    }
                }
                i += n;
            }
            for c in 0..self.k {
                if counts[c] > 0 {
                    centroids[c] = sums[c] / counts[c] as f64;
                }
            }
            if changed == 0 {
                break;
            }
        }
        KmeansResult {
            centroids,
            iterations,
            elapsed: mem.now(0) - t0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::farmem::{SystemKind, SystemSpec};

    #[test]
    fn converges_and_partitions_the_line() {
        let wl = KmeansWorkload {
            points: 5_000,
            k: 4,
            max_iters: 20,
            seed: 3,
        };
        let mut mem =
            SystemSpec::for_working_set(SystemKind::DilosReadahead, 5_000 * 16, 50).boot();
        let pts = wl.populate(mem.as_mut());
        let r = wl.run(mem.as_mut(), pts);
        assert!(r.iterations >= 1);
        assert_eq!(r.centroids.len(), 4);
        // Centroids are within the data range and distinct-ish.
        for c in &r.centroids {
            assert!((0.0..1_000_000.0).contains(c), "centroid {c}");
        }
        let mut sorted = r.centroids.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        assert!(sorted.windows(2).any(|w| w[1] - w[0] > 1_000.0));
    }

    #[test]
    fn identical_seeds_give_identical_results_across_runs() {
        let wl = KmeansWorkload {
            points: 2_000,
            k: 3,
            max_iters: 10,
            seed: 9,
        };
        let run = || {
            let mut mem =
                SystemSpec::for_working_set(SystemKind::DilosNoPrefetch, 2_000 * 16, 25).boot();
            let pts = wl.populate(mem.as_mut());
            let r = wl.run(mem.as_mut(), pts);
            (r.centroids, r.elapsed)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn memory_pressure_slows_but_does_not_change_results() {
        let wl = KmeansWorkload {
            points: 20_000,
            k: 5,
            max_iters: 8,
            seed: 11,
        };
        let run = |ratio| {
            let mut mem =
                SystemSpec::for_working_set(SystemKind::DilosReadahead, 20_000 * 16, ratio).boot();
            let pts = wl.populate(mem.as_mut());
            let r = wl.run(mem.as_mut(), pts);
            (r.centroids, r.elapsed)
        };
        let (c_full, t_full) = run(100);
        let (c_tight, t_tight) = run(13);
        assert_eq!(c_full, c_tight, "results must be ratio-independent");
        assert!(t_tight > t_full, "pressure must cost time");
    }
}
