//! A columnar DataFrame engine and the NYC-taxi analytics workload
//! (Figure 8).
//!
//! The paper runs the C++ `DataFrame` library on AIFM's New York City taxi
//! trip dataset (~40 GB working set). This module implements a columnar
//! table over far memory and the same style of analysis the AIFM/DiLOS
//! evaluation performs: scans, derived columns (haversine distance),
//! group-bys, and a sort — plus a schema-faithful synthetic taxi-trip
//! generator, since the Kaggle dataset is not redistributable here.

use crate::farmem::{FarArray, FarMemory};
use dilos_sim::SplitMix64;

/// Per-row compute charge for arithmetic kernels (ns).
const ROW_NS: u64 = 3;

/// The synthetic taxi table: one far-memory column per field.
#[derive(Debug, Clone, Copy)]
pub struct TaxiTable {
    /// Pickup timestamp (seconds since epoch).
    pub pickup_ts: FarArray,
    /// Dropoff timestamp.
    pub dropoff_ts: FarArray,
    /// Passenger count.
    pub passengers: FarArray,
    /// Trip distance in miles (f64).
    pub distance: FarArray,
    /// Pickup longitude/latitude (f64).
    pub pickup_lon: FarArray,
    /// Pickup latitude.
    pub pickup_lat: FarArray,
    /// Dropoff longitude.
    pub dropoff_lon: FarArray,
    /// Dropoff latitude.
    pub dropoff_lat: FarArray,
    /// Rows.
    pub rows: usize,
}

/// The taxi analytics workload.
#[derive(Debug, Clone, Copy)]
pub struct TaxiWorkload {
    /// Number of trips.
    pub rows: usize,
    /// RNG seed.
    pub seed: u64,
}

/// Results of the full analysis pass (used to verify system-independence).
#[derive(Debug, Clone, PartialEq)]
pub struct TaxiAnalysis {
    /// Trips with more than one passenger.
    pub multi_passenger_trips: u64,
    /// Average haversine distance (miles).
    pub avg_haversine: f64,
    /// Average trip duration per weekday (seconds), index 0 = Monday.
    pub avg_duration_by_weekday: [f64; 7],
    /// The 90th-percentile trip duration (seconds).
    pub p90_duration: u64,
    /// Virtual elapsed time of the analysis.
    pub elapsed: u64,
}

impl TaxiWorkload {
    /// Generates the synthetic table (NYC-plausible coordinates and times).
    pub fn populate(&self, mem: &mut dyn FarMemory) -> TaxiTable {
        let t = TaxiTable {
            pickup_ts: FarArray::new(mem, self.rows),
            dropoff_ts: FarArray::new(mem, self.rows),
            passengers: FarArray::new(mem, self.rows),
            distance: FarArray::new(mem, self.rows),
            pickup_lon: FarArray::new(mem, self.rows),
            pickup_lat: FarArray::new(mem, self.rows),
            dropoff_lon: FarArray::new(mem, self.rows),
            dropoff_lat: FarArray::new(mem, self.rows),
            rows: self.rows,
        };
        let mut rng = SplitMix64::new(self.seed);
        let base_ts = 1_451_606_400u64; // 2016-01-01.
        let chunk = 256usize;
        let mut cols: [Vec<u64>; 8] = Default::default();
        let mut i = 0usize;
        while i < self.rows {
            let n = chunk.min(self.rows - i);
            for c in &mut cols {
                c.clear();
            }
            for _ in 0..n {
                let pickup = base_ts + rng.gen_range(365 * 86_400);
                let duration = 120 + rng.gen_range(3_600);
                let passengers = 1 + rng.gen_range(5);
                let dist = 0.3 + rng.gen_f64() * 12.0;
                let plon = -74.02 + rng.gen_f64() * 0.12;
                let plat = 40.63 + rng.gen_f64() * 0.18;
                let dlon = plon + (rng.gen_f64() - 0.5) * 0.1;
                let dlat = plat + (rng.gen_f64() - 0.5) * 0.1;
                cols[0].push(pickup);
                cols[1].push(pickup + duration);
                cols[2].push(passengers);
                cols[3].push(dist.to_bits());
                cols[4].push(plon.to_bits());
                cols[5].push(plat.to_bits());
                cols[6].push(dlon.to_bits());
                cols[7].push(dlat.to_bits());
            }
            let arrays = [
                t.pickup_ts,
                t.dropoff_ts,
                t.passengers,
                t.distance,
                t.pickup_lon,
                t.pickup_lat,
                t.dropoff_lon,
                t.dropoff_lat,
            ];
            for (arr, col) in arrays.iter().zip(&cols) {
                arr.write_range(mem, 0, i, col);
            }
            i += n;
        }
        t
    }

    /// Runs the full analysis: filter count, haversine column, group-by
    /// weekday, and a duration percentile via sort.
    pub fn analyze(&self, mem: &mut dyn FarMemory, t: &TaxiTable) -> TaxiAnalysis {
        let t0 = mem.now(0);

        // Q1: count trips with more than one passenger (columnar scan).
        let mut multi = 0u64;
        let mut buf = vec![0u64; 256];
        let mut i = 0;
        while i < t.rows {
            let n = 256.min(t.rows - i);
            t.passengers.read_range(mem, 0, i, &mut buf[..n]);
            multi += buf[..n].iter().filter(|&&p| p > 1).count() as u64;
            mem.compute(0, n as u64);
            i += n;
        }

        // Q2: haversine distance as a derived column (reads four columns,
        // writes one — the AIFM eval's compute kernel).
        let hav = FarArray::new(mem, t.rows);
        let mut sum_h = 0f64;
        for i in 0..t.rows {
            let plon = t.pickup_lon.get_f64(mem, 0, i);
            let plat = t.pickup_lat.get_f64(mem, 0, i);
            let dlon = t.dropoff_lon.get_f64(mem, 0, i);
            let dlat = t.dropoff_lat.get_f64(mem, 0, i);
            let h = haversine_miles(plat, plon, dlat, dlon);
            hav.set_f64(mem, 0, i, h);
            sum_h += h;
            mem.compute(0, ROW_NS * 4);
        }

        // Q3: group trip duration by weekday.
        let mut dur_sum = [0f64; 7];
        let mut dur_cnt = [0u64; 7];
        let mut pick = vec![0u64; 256];
        let mut drop = vec![0u64; 256];
        let mut i = 0;
        while i < t.rows {
            let n = 256.min(t.rows - i);
            t.pickup_ts.read_range(mem, 0, i, &mut pick[..n]);
            t.dropoff_ts.read_range(mem, 0, i, &mut drop[..n]);
            for j in 0..n {
                // 1970-01-01 was a Thursday; index 0 = Monday.
                let wd = ((pick[j] / 86_400 + 3) % 7) as usize;
                dur_sum[wd] += (drop[j] - pick[j]) as f64;
                dur_cnt[wd] += 1;
            }
            mem.compute(0, n as u64 * 2);
            i += n;
        }
        let mut avg_by_wd = [0f64; 7];
        for d in 0..7 {
            if dur_cnt[d] > 0 {
                avg_by_wd[d] = dur_sum[d] / dur_cnt[d] as f64;
            }
        }

        // Q4: p90 duration via sorting a derived duration column.
        let dur = FarArray::new(mem, t.rows);
        let mut i = 0;
        while i < t.rows {
            let n = 256.min(t.rows - i);
            t.pickup_ts.read_range(mem, 0, i, &mut pick[..n]);
            t.dropoff_ts.read_range(mem, 0, i, &mut drop[..n]);
            let durations: Vec<u64> = (0..n).map(|j| drop[j] - pick[j]).collect();
            dur.write_range(mem, 0, i, &durations);
            i += n;
        }
        let sorter = crate::quicksort::QuicksortWorkload {
            elements: t.rows,
            seed: 0,
        };
        sorter.sort(mem, dur);
        let p90 = dur.get(mem, 0, (t.rows as f64 * 0.9) as usize);

        TaxiAnalysis {
            multi_passenger_trips: multi,
            avg_haversine: sum_h / t.rows as f64,
            avg_duration_by_weekday: avg_by_wd,
            p90_duration: p90,
            elapsed: mem.now(0) - t0,
        }
    }

    /// Total working-set bytes (9 columns of 8 bytes per row).
    pub fn working_set(&self) -> u64 {
        (self.rows * 8 * 10) as u64
    }
}

/// Great-circle distance in miles.
fn haversine_miles(lat1: f64, lon1: f64, lat2: f64, lon2: f64) -> f64 {
    let r = 3_959.0;
    let dlat = (lat2 - lat1).to_radians();
    let dlon = (lon2 - lon1).to_radians();
    let a = (dlat / 2.0).sin().powi(2)
        + lat1.to_radians().cos() * lat2.to_radians().cos() * (dlon / 2.0).sin().powi(2);
    2.0 * r * a.sqrt().asin()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::farmem::{SystemKind, SystemSpec};

    #[test]
    fn analysis_is_system_independent() {
        let wl = TaxiWorkload {
            rows: 3_000,
            seed: 17,
        };
        let run = |kind| {
            let mut mem = SystemSpec::for_working_set(kind, wl.working_set(), 25).boot();
            let t = wl.populate(mem.as_mut());
            let mut a = wl.analyze(mem.as_mut(), &t);
            a.elapsed = 0; // Times differ; answers must not.
            a
        };
        let dilos = run(SystemKind::DilosReadahead);
        let fastswap = run(SystemKind::Fastswap);
        let aifm = run(SystemKind::Aifm);
        assert_eq!(dilos, fastswap);
        assert_eq!(dilos, aifm);
    }

    #[test]
    fn results_are_plausible() {
        let wl = TaxiWorkload {
            rows: 2_000,
            seed: 4,
        };
        let mut mem =
            SystemSpec::for_working_set(SystemKind::DilosReadahead, wl.working_set(), 100).boot();
        let t = wl.populate(mem.as_mut());
        let a = wl.analyze(mem.as_mut(), &t);
        // ~4/5 of trips have >1 passenger under the uniform 1..=5 draw.
        let frac = a.multi_passenger_trips as f64 / wl.rows as f64;
        assert!((0.7..0.9).contains(&frac), "frac {frac}");
        assert!(a.avg_haversine > 0.5 && a.avg_haversine < 20.0);
        // Durations are 120..=3720 s.
        assert!((120..=3_720).contains(&a.p90_duration));
        for d in a.avg_duration_by_weekday {
            assert!((120.0..=3_720.0).contains(&d));
        }
    }

    #[test]
    fn haversine_known_distance() {
        // JFK to LaGuardia is roughly 10.5 miles.
        let d = haversine_miles(40.6413, -73.7781, 40.7769, -73.8740);
        assert!((9.0..12.0).contains(&d), "got {d}");
        // Zero distance.
        assert!(haversine_miles(40.0, -74.0, 40.0, -74.0) < 1e-9);
    }
}
