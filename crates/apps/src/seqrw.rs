//! Sequential read/write microbenchmark (§6.1, Table 2 / Tables 1 & 3).
//!
//! "The workload first allocates and populates 20 GB of memory and then
//! reads or writes the region with 4 KB strides." Sizes here are scaled;
//! the benches report GB/s exactly as Table 2 does.

use crate::farmem::FarMemory;
use dilos_sim::Ns;

/// Result of one sequential pass.
#[derive(Debug, Clone, Copy)]
pub struct SeqResult {
    /// Bytes covered by the pass (the populated region size).
    pub bytes: u64,
    /// Virtual time the pass took.
    pub elapsed: Ns,
}

impl SeqResult {
    /// Throughput in GB/s (the Table 2 metric).
    pub fn gbps(&self) -> f64 {
        if self.elapsed == 0 {
            return 0.0;
        }
        self.bytes as f64 / self.elapsed as f64
    }
}

/// The sequential workload over a `pages`-page region.
#[derive(Debug, Clone, Copy)]
pub struct SeqWorkload {
    /// Region size in 4 KiB pages.
    pub pages: usize,
}

impl SeqWorkload {
    /// Allocates and populates the region (writes one stamp per page),
    /// returning the base address.
    pub fn populate(&self, mem: &mut dyn FarMemory) -> u64 {
        let base = mem.alloc(self.pages * 4096);
        for p in 0..self.pages as u64 {
            mem.write_u64(0, base + p * 4096, p ^ 0x5A5A);
        }
        base
    }

    /// Sequential read pass with 4 KiB strides; verifies the stamps.
    ///
    /// # Panics
    ///
    /// Panics if a page comes back corrupted (the substrate lost data).
    pub fn read_pass(&self, mem: &mut dyn FarMemory, base: u64) -> SeqResult {
        let t0 = mem.now(0);
        for p in 0..self.pages as u64 {
            let v = mem.read_u64(0, base + p * 4096);
            assert_eq!(v, p ^ 0x5A5A, "page {p} corrupted");
        }
        SeqResult {
            bytes: (self.pages * 4096) as u64,
            elapsed: mem.now(0) - t0,
        }
    }

    /// Sequential write pass with 4 KiB strides.
    pub fn write_pass(&self, mem: &mut dyn FarMemory, base: u64) -> SeqResult {
        let t0 = mem.now(0);
        for p in 0..self.pages as u64 {
            mem.write_u64(0, base + p * 4096, p.wrapping_mul(3));
        }
        SeqResult {
            bytes: (self.pages * 4096) as u64,
            elapsed: mem.now(0) - t0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::farmem::{SystemKind, SystemSpec};

    #[test]
    fn table2_shape_read_throughput_ordering() {
        // Table 2: DiLOS readahead > DiLOS no-prefetch > Fastswap on
        // sequential read at 12.5 % local memory.
        let ws = 512u64 * 4096;
        let wl = SeqWorkload { pages: 512 };
        let run = |kind| {
            let mut mem = SystemSpec::for_working_set(kind, ws, 13).boot();
            let base = wl.populate(mem.as_mut());
            wl.read_pass(mem.as_mut(), base).gbps()
        };
        let fastswap = run(SystemKind::Fastswap);
        let none = run(SystemKind::DilosNoPrefetch);
        let ra = run(SystemKind::DilosReadahead);
        assert!(
            none > fastswap,
            "DiLOS no-prefetch {none:.2} vs Fastswap {fastswap:.2}"
        );
        assert!(
            ra > 2.0 * none,
            "readahead {ra:.2} vs no-prefetch {none:.2}"
        );
    }

    #[test]
    fn write_pass_is_write_dominated() {
        let ws = 256u64 * 4096;
        let wl = SeqWorkload { pages: 256 };
        let mut mem = SystemSpec::for_working_set(SystemKind::DilosReadahead, ws, 13).boot();
        let base = wl.populate(mem.as_mut());
        let r = wl.write_pass(mem.as_mut(), base);
        assert!(r.gbps() > 0.0);
    }
}
