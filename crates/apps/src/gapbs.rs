//! GAPBS graph workloads: PageRank and betweenness centrality (Figure 9).
//!
//! The paper runs GAP Benchmark Suite 1.4's PR and BC kernels on the
//! Twitter graph (17 GB working set) with four threads. This module
//! implements, from scratch:
//!
//! - a Kronecker (R-MAT) power-law graph generator (the GAPBS synthetic
//!   generator, substituting for the non-redistributable Twitter crawl),
//! - a CSR representation living in far memory (both directions),
//! - pull-based PageRank, and
//! - Brandes betweenness centrality from sampled sources —
//!
//! with the multi-threaded execution model of the paper: vertex ranges are
//! partitioned across simulated cores with barriers between phases. BC's
//! extra level of indirection (frontier → CSR → per-vertex arrays) is what
//! makes it "more random than PageRank" (§6.2), and that shows up here.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use crate::farmem::{FarArray, FarMemory};
use dilos_core::{GuideOps, PrefetchGuide};
use dilos_sim::SplitMix64;

/// Per-edge compute charge (ns).
const EDGE_NS: u64 = 2;

/// A far-memory CSR graph (plus its transpose for pull-style kernels).
#[derive(Debug, Clone, Copy)]
pub struct FarGraph {
    /// Out-neighbour offsets, `n + 1` entries.
    pub out_ptr: FarArray,
    /// Out-neighbour targets, `m` entries.
    pub out_col: FarArray,
    /// In-neighbour offsets, `n + 1` entries.
    pub in_ptr: FarArray,
    /// In-neighbour sources, `m` entries.
    pub in_col: FarArray,
    /// Vertices.
    pub n: usize,
    /// Directed edges.
    pub m: usize,
}

/// The graph workload descriptor.
#[derive(Debug, Clone, Copy)]
pub struct GraphWorkload {
    /// Kronecker scale: `n = 2^scale` vertices.
    pub scale: u32,
    /// Edges per vertex (GAPBS default 16).
    pub edge_factor: usize,
    /// RNG seed.
    pub seed: u64,
    /// Simulated threads (the paper uses 4).
    pub threads: usize,
}

impl GraphWorkload {
    /// Number of vertices.
    pub fn vertices(&self) -> usize {
        1 << self.scale
    }

    /// Generates the R-MAT edge list and builds both CSR directions in far
    /// memory.
    pub fn build(&self, mem: &mut dyn FarMemory) -> FarGraph {
        let n = self.vertices();
        let m = n * self.edge_factor;
        let mut rng = SplitMix64::new(self.seed);
        // R-MAT parameters from the Graph500/GAPBS spec.
        let (a, b, c) = (0.57, 0.19, 0.19);
        let mut edges: Vec<(u32, u32)> = Vec::with_capacity(m);
        for _ in 0..m {
            let (mut u, mut v) = (0usize, 0usize);
            for _ in 0..self.scale {
                let r = rng.gen_f64();
                let (ub, vb) = if r < a {
                    (0, 0)
                } else if r < a + b {
                    (0, 1)
                } else if r < a + b + c {
                    (1, 0)
                } else {
                    (1, 1)
                };
                u = (u << 1) | ub;
                v = (v << 1) | vb;
            }
            if u != v {
                edges.push((u as u32, v as u32));
            }
        }
        // Permute vertex labels (GAPBS shuffles to avoid locality bias).
        let mut perm: Vec<u32> = (0..n as u32).collect();
        rng.shuffle(&mut perm);
        for e in &mut edges {
            e.0 = perm[e.0 as usize];
            e.1 = perm[e.1 as usize];
        }
        let m = edges.len();

        // Degree counting + prefix sums (host-side scratch; the CSR itself
        // lives in far memory).
        let mut out_deg = vec![0u64; n + 1];
        let mut in_deg = vec![0u64; n + 1];
        for &(u, v) in &edges {
            out_deg[u as usize + 1] += 1;
            in_deg[v as usize + 1] += 1;
        }
        for i in 1..=n {
            out_deg[i] += out_deg[i - 1];
            in_deg[i] += in_deg[i - 1];
        }

        let g = FarGraph {
            out_ptr: FarArray::new(mem, n + 1),
            out_col: FarArray::new(mem, m.max(1)),
            in_ptr: FarArray::new(mem, n + 1),
            in_col: FarArray::new(mem, m.max(1)),
            n,
            m,
        };
        g.out_ptr.write_range(mem, 0, 0, &out_deg);
        g.in_ptr.write_range(mem, 0, 0, &in_deg);

        let mut out_fill = out_deg.clone();
        let mut in_fill = in_deg.clone();
        let mut out_col = vec![0u64; m];
        let mut in_col = vec![0u64; m];
        for &(u, v) in &edges {
            out_col[out_fill[u as usize] as usize] = v as u64;
            out_fill[u as usize] += 1;
            in_col[in_fill[v as usize] as usize] = u as u64;
            in_fill[v as usize] += 1;
        }
        g.out_col.write_range(mem, 0, 0, &out_col);
        g.in_col.write_range(mem, 0, 0, &in_col);
        g
    }

    /// Far-memory footprint of the CSR in bytes.
    pub fn working_set(&self) -> u64 {
        let n = self.vertices() as u64;
        let m = (self.vertices() * self.edge_factor) as u64;
        // Two ptr arrays + two col arrays + rank/score arrays.
        (2 * (n + 1) + 2 * m + 4 * n) * 8
    }

    /// Pull-based PageRank for `iters` iterations; returns the score array
    /// and the virtual elapsed time.
    pub fn pagerank(&self, mem: &mut dyn FarMemory, g: &FarGraph, iters: usize) -> (Vec<f64>, u64) {
        let t0 = mem.max_now();
        let n = g.n;
        let damp = 0.85;
        let base = (1.0 - damp) / n as f64;
        let rank = FarArray::new(mem, n);
        let contrib = FarArray::new(mem, n);
        for v in 0..n {
            rank.set_f64(mem, 0, v, 1.0 / n as f64);
        }
        let threads = self.threads.max(1);
        for _ in 0..iters {
            // Phase 1: per-vertex contribution = rank / out-degree.
            for (core, range) in partition(n, threads) {
                for v in range {
                    let d = g.out_ptr.get(mem, core, v + 1) - g.out_ptr.get(mem, core, v);
                    let r = rank.get_f64(mem, core, v);
                    let c = if d > 0 { r / d as f64 } else { 0.0 };
                    contrib.set_f64(mem, core, v, c);
                    mem.compute(core, EDGE_NS);
                }
            }
            mem.barrier();
            // Phase 2: pull contributions along in-edges.
            for (core, range) in partition(n, threads) {
                for v in range {
                    let s = g.in_ptr.get(mem, core, v) as usize;
                    let e = g.in_ptr.get(mem, core, v + 1) as usize;
                    let mut sum = 0f64;
                    for idx in s..e {
                        let u = g.in_col.get(mem, core, idx) as usize;
                        sum += contrib.get_f64(mem, core, u);
                        mem.compute(core, EDGE_NS);
                    }
                    rank.set_f64(mem, core, v, base + damp * sum);
                }
            }
            mem.barrier();
        }
        let scores: Vec<f64> = (0..n).map(|v| rank.get_f64(mem, 0, v)).collect();
        (scores, mem.max_now() - t0)
    }

    /// Brandes betweenness centrality from `sources` sampled roots;
    /// returns centrality scores and virtual elapsed time.
    pub fn betweenness(
        &self,
        mem: &mut dyn FarMemory,
        g: &FarGraph,
        sources: usize,
    ) -> (Vec<f64>, u64) {
        self.betweenness_hooked(mem, g, sources, None)
    }

    /// [`betweenness`](Self::betweenness) with the app-aware [`GraphGuide`]
    /// hooks driven from the frontier loop (the §5 "hooking interface"
    /// pattern: the kernel is unchanged except for the hook calls).
    pub fn betweenness_hooked(
        &self,
        mem: &mut dyn FarMemory,
        g: &FarGraph,
        sources: usize,
        guide: Option<&Rc<RefCell<GraphGuide>>>,
    ) -> (Vec<f64>, u64) {
        let t0 = mem.max_now();
        let n = g.n;
        let threads = self.threads.max(1);
        let mut centrality = vec![0f64; n];
        let mut rng = SplitMix64::new(self.seed ^ 0xBC);
        let depth = FarArray::new(mem, n);
        let sigma = FarArray::new(mem, n);
        let delta = FarArray::new(mem, n);

        for _ in 0..sources {
            // GAPBS samples sources with non-zero out-degree (a Kronecker
            // graph has many isolated vertices).
            let src = loop {
                let cand = rng.gen_range(n as u64) as usize;
                let deg = g.out_ptr.get(mem, 0, cand + 1) - g.out_ptr.get(mem, 0, cand);
                if deg > 0 {
                    break cand;
                }
            };
            // Init arrays (parallel sweep).
            for (core, range) in partition(n, threads) {
                for v in range {
                    depth.set_i64(mem, core, v, -1);
                    sigma.set(mem, core, v, 0);
                    delta.set_f64(mem, core, v, 0.0);
                }
            }
            mem.barrier();
            depth.set_i64(mem, 0, src, 0);
            sigma.set(mem, 0, src, 1);

            // Forward BFS, level-synchronous; frontier chunks round-robin
            // across cores.
            let mut levels: Vec<Vec<u32>> = vec![vec![src as u32]];
            loop {
                let frontier = levels.last().expect("non-empty");
                if frontier.is_empty() {
                    levels.pop();
                    break;
                }
                let d = (levels.len() - 1) as i64;
                let mut next = Vec::new();
                for (ci, chunk) in frontier.chunks(64).enumerate() {
                    let core = ci % threads;
                    if let Some(gd) = guide {
                        gd.borrow_mut().hook_frontier(chunk, false);
                    }
                    for &u in chunk {
                        let s = g.out_ptr.get(mem, core, u as usize) as usize;
                        let e = g.out_ptr.get(mem, core, u as usize + 1) as usize;
                        let su = sigma.get(mem, core, u as usize);
                        for idx in s..e {
                            let v = g.out_col.get(mem, core, idx) as usize;
                            let dv = depth.get_i64(mem, core, v);
                            mem.compute(core, EDGE_NS);
                            if dv < 0 {
                                depth.set_i64(mem, core, v, d + 1);
                                sigma.set(mem, core, v, su);
                                next.push(v as u32);
                            } else if dv == d + 1 {
                                let sv = sigma.get(mem, core, v);
                                sigma.set(mem, core, v, sv + su);
                            }
                        }
                    }
                }
                mem.barrier();
                levels.push(next);
            }

            // Backward dependency accumulation.
            for level in levels.iter().skip(1).rev() {
                for (ci, chunk) in level.chunks(64).enumerate() {
                    let core = ci % threads;
                    if let Some(gd) = guide {
                        gd.borrow_mut().hook_frontier(chunk, true);
                    }
                    for &v in chunk {
                        let dv = depth.get_i64(mem, core, v as usize);
                        let s = g.in_ptr.get(mem, core, v as usize) as usize;
                        let e = g.in_ptr.get(mem, core, v as usize + 1) as usize;
                        let sv = sigma.get(mem, core, v as usize) as f64;
                        let delv = delta.get_f64(mem, core, v as usize);
                        for idx in s..e {
                            let u = g.in_col.get(mem, core, idx) as usize;
                            mem.compute(core, EDGE_NS);
                            if depth.get_i64(mem, core, u) == dv - 1 {
                                let su = sigma.get(mem, core, u) as f64;
                                let du = delta.get_f64(mem, core, u);
                                delta.set_f64(mem, core, u, du + (su / sv) * (1.0 + delv));
                            }
                        }
                        if v as usize != src {
                            centrality[v as usize] += delv;
                        }
                    }
                }
                mem.barrier();
            }
        }
        if let Some(gd) = guide {
            gd.borrow_mut().hook_done();
        }
        (centrality, mem.max_now() - t0)
    }
}

/// An app-aware prefetch guide for CSR traversals (§4.3 applied to graphs).
///
/// The application hooks its frontier loop: before expanding a batch of
/// vertices it tells the guide which vertices come next
/// ([`hook_frontier`](Self::hook_frontier)). On each page fault the guide
/// subpage-fetches the CSR offsets of the next few frontier vertices (16
/// bytes each — they arrive ahead of any full page) and prefetches the
/// column-array pages their edge lists occupy. General-purpose prefetchers
/// cannot see this: frontier order is BFS discovery order, so consecutive
/// edge segments are scattered across the column array.
#[derive(Debug)]
pub struct GraphGuide {
    out_ptr: u64,
    out_col: u64,
    in_ptr: u64,
    in_col: u64,
    /// Upcoming `(vertex, backward?)` expansions, newest last.
    queue: VecDeque<(u32, bool)>,
    /// Vertices to chase per fault.
    depth: usize,
    /// Pages prefetched (stats).
    pub pages_prefetched: u64,
    /// Faults assisted (stats).
    pub assists: u64,
}

impl GraphGuide {
    /// Builds a guide for `g`'s memory layout.
    pub fn new(g: &FarGraph) -> Self {
        Self {
            out_ptr: g.out_ptr.base(),
            out_col: g.out_col.base(),
            in_ptr: g.in_ptr.base(),
            in_col: g.in_col.base(),
            queue: VecDeque::new(),
            depth: 4,
            pages_prefetched: 0,
            assists: 0,
        }
    }

    /// Hook: the application is about to expand `verts` (in order);
    /// `backward` selects the in-CSR (BC's dependency pass).
    pub fn hook_frontier(&mut self, verts: &[u32], backward: bool) {
        self.queue.clear();
        self.queue.extend(verts.iter().map(|&v| (v, backward)));
    }

    /// Hook: the traversal finished; disarm.
    pub fn hook_done(&mut self) {
        self.queue.clear();
    }
}

impl PrefetchGuide for GraphGuide {
    fn on_fault(&mut self, _va: u64, ops: &mut dyn GuideOps) {
        if self.queue.is_empty() {
            return;
        }
        self.assists += 1;
        for _ in 0..self.depth {
            let Some((v, backward)) = self.queue.pop_front() else {
                break;
            };
            let (ptr_base, col_base) = if backward {
                (self.in_ptr, self.in_col)
            } else {
                (self.out_ptr, self.out_col)
            };
            // Subpage-fetch offsets `ptr[v]` and `ptr[v + 1]` (16 bytes;
            // two reads when the pair straddles a page boundary).
            let addr = ptr_base + v as u64 * 8;
            let (s, e) = if (addr >> 12) == ((addr + 15) >> 12) {
                let Some((bytes, _)) = ops.subpage_read(addr, 16) else {
                    continue;
                };
                (
                    u64::from_le_bytes(bytes[0..8].try_into().expect("8")),
                    u64::from_le_bytes(bytes[8..16].try_into().expect("8")),
                )
            } else {
                let Some((lo, _)) = ops.subpage_read(addr, 8) else {
                    continue;
                };
                let Some((hi, _)) = ops.subpage_read(addr + 8, 8) else {
                    continue;
                };
                (
                    u64::from_le_bytes(lo[0..8].try_into().expect("8")),
                    u64::from_le_bytes(hi[0..8].try_into().expect("8")),
                )
            };
            if e <= s {
                continue;
            }
            // Prefetch the column pages this vertex's edge list occupies.
            let mut page = (col_base + s * 8) & !4095;
            let end = col_base + e * 8;
            while page < end {
                ops.prefetch_page(page);
                self.pages_prefetched += 1;
                page += 4096;
            }
        }
    }
}

/// Splits `0..n` into `threads` contiguous ranges tagged with core ids.
fn partition(n: usize, threads: usize) -> Vec<(usize, std::ops::Range<usize>)> {
    let per = n.div_ceil(threads);
    (0..threads)
        .map(|c| (c, (c * per).min(n)..((c + 1) * per).min(n)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::farmem::{SystemKind, SystemSpec};

    fn small() -> GraphWorkload {
        GraphWorkload {
            scale: 8,
            edge_factor: 8,
            seed: 21,
            threads: 4,
        }
    }

    fn boot(wl: &GraphWorkload, ratio: u32) -> Box<dyn FarMemory> {
        let mut spec =
            SystemSpec::for_working_set(SystemKind::DilosReadahead, wl.working_set(), ratio);
        spec.cores = wl.threads;
        spec.boot()
    }

    #[test]
    fn csr_is_well_formed() {
        let wl = small();
        let mut mem = boot(&wl, 100);
        let g = wl.build(mem.as_mut());
        assert_eq!(g.n, 256);
        assert!(g.m > 0);
        // Offsets are monotone and end at m, in both directions.
        let mut prev = 0;
        for v in 0..=g.n {
            let p = g.out_ptr.get(mem.as_mut(), 0, v);
            assert!(p >= prev);
            prev = p;
        }
        assert_eq!(prev as usize, g.m);
        assert_eq!(g.in_ptr.get(mem.as_mut(), 0, g.n) as usize, g.m);
        // Every column index is a valid vertex.
        for i in 0..g.m {
            assert!((g.out_col.get(mem.as_mut(), 0, i) as usize) < g.n);
        }
    }

    #[test]
    fn pagerank_sums_to_one_and_is_skewed() {
        let wl = small();
        let mut mem = boot(&wl, 100);
        let g = wl.build(mem.as_mut());
        let (scores, elapsed) = wl.pagerank(mem.as_mut(), &g, 10);
        assert!(elapsed > 0);
        // GAPBS's pull kernel does not redistribute dangling-vertex mass,
        // so the total is ≤ 1 but must stay substantial.
        let sum: f64 = scores.iter().sum();
        assert!(sum > 0.5 && sum <= 1.0 + 1e-9, "rank mass {sum}");
        // Power-law graph: the max rank dwarfs the median.
        let mut sorted = scores.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        assert!(sorted[scores.len() - 1] > 10.0 * sorted[scores.len() / 2]);
    }

    #[test]
    fn bc_scores_are_nonnegative_and_nonzero_somewhere() {
        let wl = small();
        let mut mem = boot(&wl, 100);
        let g = wl.build(mem.as_mut());
        let (scores, elapsed) = wl.betweenness(mem.as_mut(), &g, 2);
        assert!(elapsed > 0);
        assert!(scores.iter().all(|&s| s >= 0.0));
        assert!(
            scores.iter().any(|&s| s > 0.0),
            "some vertex must be central"
        );
    }

    #[test]
    fn results_independent_of_memory_pressure() {
        let wl = GraphWorkload {
            scale: 7,
            edge_factor: 8,
            seed: 5,
            threads: 2,
        };
        let run = |ratio| {
            let mut mem = boot(&wl, ratio);
            let g = wl.build(mem.as_mut());
            wl.pagerank(mem.as_mut(), &g, 5).0
        };
        assert_eq!(run(100), run(13));
    }

    #[test]
    fn graph_guide_speeds_up_bc_under_pressure() {
        use dilos_core::{Dilos, DilosConfig, Readahead};
        let wl = GraphWorkload {
            scale: 9,
            edge_factor: 16,
            seed: 13,
            threads: 1,
        };
        let run = |guided: bool| {
            let local_pages = (wl.working_set() / 4096 * 20 / 100).max(32) as usize;
            let mut node = Dilos::new(DilosConfig {
                local_pages,
                remote_bytes: (wl.working_set() * 4).next_power_of_two(),
                ..DilosConfig::default()
            });
            node.set_prefetcher(Box::new(Readahead::new()));
            let g = wl.build(&mut node);
            let guide = Rc::new(RefCell::new(GraphGuide::new(&g)));
            if guided {
                node.set_prefetch_guide(guide.clone());
            }
            let (scores, t) = wl.betweenness_hooked(&mut node, &g, 2, guided.then_some(&guide));
            let prefetched = guide.borrow().pages_prefetched;
            (scores, t, prefetched)
        };
        let (s_plain, t_plain, _) = run(false);
        let (s_guided, t_guided, prefetched) = run(true);
        assert_eq!(s_plain, s_guided, "guides must not change results");
        assert!(prefetched > 0, "the guide must have prefetched");
        assert!(
            t_guided < t_plain,
            "guided BC must be faster: {t_guided} vs {t_plain}"
        );
    }

    #[test]
    fn partition_covers_everything() {
        for n in [0, 1, 7, 100] {
            for t in [1, 3, 4] {
                let parts = partition(n, t);
                let total: usize = parts.iter().map(|(_, r)| r.len()).sum();
                assert_eq!(total, n);
            }
        }
    }
}
