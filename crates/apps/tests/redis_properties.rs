//! Model-based property tests for the Redis data structures on far memory.
//!
//! The dict is driven against a `HashMap`, the quicklist against a `Vec`,
//! and the whole server against a `BTreeMap`, all under memory pressure, so
//! every structural invariant (chains, rehash, ziplist packing) is checked
//! against ground truth while pages churn through the memory node.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::rc::Rc;

use dilos_alloc::Heap;
use dilos_apps::farmem::{FarMemory, SystemKind, SystemSpec};
use dilos_apps::redis::dict::Dict;
use dilos_apps::redis::quicklist::Quicklist;
use dilos_apps::redis::RedisServer;
use proptest::prelude::*;

fn setup(heap_bytes: u64, ratio: u32) -> (Box<dyn FarMemory>, Rc<RefCell<Heap>>) {
    let mut mem = SystemSpec::for_working_set(SystemKind::DilosReadahead, heap_bytes, ratio).boot();
    let base = mem.alloc(heap_bytes as usize);
    (mem, Rc::new(RefCell::new(Heap::new(base, heap_bytes))))
}

#[derive(Debug, Clone)]
enum DictOp {
    Insert(u8, u64),
    Remove(u8),
    Find(u8),
}

fn dict_op() -> impl Strategy<Value = DictOp> {
    prop_oneof![
        3 => (any::<u8>(), any::<u64>()).prop_map(|(k, v)| DictOp::Insert(k, v)),
        1 => any::<u8>().prop_map(DictOp::Remove),
        2 => any::<u8>().prop_map(DictOp::Find),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn dict_matches_hashmap(ops in prop::collection::vec(dict_op(), 1..250)) {
        let (mut mem, heap) = setup(1 << 22, 25);
        let mut dict = Dict::new(Rc::clone(&heap), mem.as_mut(), 4);
        let mut model: HashMap<u8, u64> = HashMap::new();
        for op in ops {
            match op {
                DictOp::Insert(k, v) => {
                    let key = format!("key-{k}");
                    let old = dict.insert(mem.as_mut(), 0, key.as_bytes(), v);
                    let model_old = model.insert(k, v);
                    prop_assert_eq!(old.is_some(), model_old.is_some());
                }
                DictOp::Remove(k) => {
                    let key = format!("key-{k}");
                    let got = dict.remove(mem.as_mut(), 0, key.as_bytes());
                    prop_assert_eq!(got, model.remove(&k));
                }
                DictOp::Find(k) => {
                    let key = format!("key-{k}");
                    let got = dict.find(mem.as_mut(), 0, key.as_bytes()).map(|(_, v)| v);
                    prop_assert_eq!(got, model.get(&k).copied());
                }
            }
            prop_assert_eq!(dict.len(), model.len());
        }
        // Post-run: everything still resolvable (rehash may be mid-flight).
        for (k, v) in &model {
            let key = format!("key-{k}");
            prop_assert_eq!(
                dict.find(mem.as_mut(), 0, key.as_bytes()).map(|(_, val)| val),
                Some(*v)
            );
        }
    }

    #[test]
    fn quicklist_matches_vec(
        elems in prop::collection::vec((1usize..200, any::<u8>()), 1..150),
        zl_cap in 64u32..2048,
        count in 1usize..120,
    ) {
        let (mut mem, heap) = setup(1 << 22, 25);
        let ql = Quicklist::new(Rc::clone(&heap), mem.as_mut(), 0, zl_cap.max(256));
        let mut model: Vec<Vec<u8>> = Vec::new();
        for (len, stamp) in elems {
            let len = len.min(ql.zl_cap as usize - 12);
            let payload = vec![stamp; len.max(1)];
            ql.rpush(mem.as_mut(), 0, &payload);
            model.push(payload);
        }
        prop_assert_eq!(ql.len(mem.as_mut(), 0) as usize, model.len());
        let got = ql.lrange(mem.as_mut(), 0, count);
        let want: Vec<Vec<u8>> = model.iter().take(count).cloned().collect();
        prop_assert_eq!(got, want);
        // Destroy returns all memory.
        let live_before = heap.borrow().stats().live_bytes;
        prop_assert!(live_before > 0);
        ql.destroy(mem.as_mut(), 0);
        prop_assert_eq!(heap.borrow().stats().live_bytes, 0);
    }
}

#[derive(Debug, Clone)]
enum ServerOp {
    Set(u8, u16),
    Get(u8),
    Del(u8),
    Rpush(u8, u8),
    Lrange(u8),
}

fn server_op() -> impl Strategy<Value = ServerOp> {
    prop_oneof![
        3 => (any::<u8>(), 1u16..2000).prop_map(|(k, n)| ServerOp::Set(k, n)),
        2 => any::<u8>().prop_map(ServerOp::Get),
        1 => any::<u8>().prop_map(ServerOp::Del),
        2 => (any::<u8>(), any::<u8>()).prop_map(|(k, v)| ServerOp::Rpush(k, v)),
        1 => any::<u8>().prop_map(ServerOp::Lrange),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The whole server against a reference model, under pressure. String
    /// and list keyspaces are disjoint (as in the paper's workloads).
    #[test]
    fn server_matches_reference(ops in prop::collection::vec(server_op(), 1..150)) {
        let (mut mem, heap) = setup(1 << 23, 13);
        let mut server = RedisServer::new(heap, mem.as_mut(), 1024);
        let mut strings: BTreeMap<u8, Vec<u8>> = BTreeMap::new();
        let mut lists: BTreeMap<u8, Vec<Vec<u8>>> = BTreeMap::new();
        for op in ops {
            match op {
                ServerOp::Set(k, n) => {
                    let key = format!("str:{k}");
                    let val = vec![k ^ 0x5A; n as usize];
                    server.set(mem.as_mut(), 0, key.as_bytes(), &val);
                    strings.insert(k, val);
                }
                ServerOp::Get(k) => {
                    let key = format!("str:{k}");
                    let got = server.get(mem.as_mut(), 0, key.as_bytes());
                    prop_assert_eq!(got.as_ref(), strings.get(&k));
                }
                ServerOp::Del(k) => {
                    let key = format!("str:{k}");
                    let existed = server.del(mem.as_mut(), 0, key.as_bytes());
                    prop_assert_eq!(existed, strings.remove(&k).is_some());
                }
                ServerOp::Rpush(k, v) => {
                    let key = format!("list:{k}");
                    let elem = vec![v; (v as usize % 90) + 1];
                    server.rpush(mem.as_mut(), 0, key.as_bytes(), &elem);
                    lists.entry(k).or_default().push(elem);
                }
                ServerOp::Lrange(k) => {
                    let key = format!("list:{k}");
                    let got = server.lrange(mem.as_mut(), 0, key.as_bytes(), 100);
                    let want: Vec<Vec<u8>> = lists
                        .get(&k)
                        .map(|l| l.iter().take(100).cloned().collect())
                        .unwrap_or_default();
                    prop_assert_eq!(got, want);
                }
            }
        }
        prop_assert_eq!(server.dbsize(), strings.len() + lists.len());
    }
}
