//! Property tests for the Snappy codec.
//!
//! Two obligations: (1) compression round-trips arbitrary inputs exactly;
//! (2) the decompressor is total — arbitrary bytes never panic, they either
//! decode or return an error (the decompressor is exposed to remote data).

use dilos_apps::snappy::{compress, decompress};
use proptest::prelude::*;

/// Inputs mixing compressible runs with random noise.
fn mixed_input() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(
        prop_oneof![
            // A run of one byte (RLE-style copies).
            (any::<u8>(), 1usize..200).prop_map(|(b, n)| vec![b; n]),
            // A repeated short phrase (dictionary-style copies).
            (prop::collection::vec(any::<u8>(), 1..12), 1usize..20).prop_map(|(w, n)| w.repeat(n)),
            // Raw noise (literals).
            prop::collection::vec(any::<u8>(), 0..300),
        ],
        0..12,
    )
    .prop_map(|chunks| chunks.concat())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn roundtrip_is_exact(input in mixed_input()) {
        let c = compress(&input);
        let back = decompress(&c).expect("own output must decode");
        prop_assert_eq!(back, input);
    }

    #[test]
    fn roundtrip_is_exact_on_pure_noise(input in prop::collection::vec(any::<u8>(), 0..4096)) {
        let c = compress(&input);
        // Framing overhead on incompressible data stays small.
        prop_assert!(c.len() <= input.len() + input.len() / 32 + 16);
        prop_assert_eq!(decompress(&c).expect("own output must decode"), input);
    }

    #[test]
    fn compressible_input_actually_shrinks(b in any::<u8>(), n in 512usize..8192) {
        let input = vec![b; n];
        let c = compress(&input);
        prop_assert!(c.len() < n / 8, "RLE input must compress hard: {} -> {}", n, c.len());
    }

    /// Decompression is total over arbitrary bytes: no panics, no UB — only
    /// `Ok` (if it happens to be a valid stream) or a structured error.
    #[test]
    fn decompressor_is_total(garbage in prop::collection::vec(any::<u8>(), 0..2048)) {
        let _ = decompress(&garbage);
    }

    /// Truncating a valid stream never panics and never produces a
    /// silently-wrong success of the full length.
    #[test]
    fn truncation_is_detected(input in mixed_input(), cut in 0usize..100) {
        prop_assume!(!input.is_empty());
        let c = compress(&input);
        let cut = cut.min(c.len().saturating_sub(1));
        if let Ok(out) = decompress(&c[..cut]) {
            prop_assert_ne!(out, input, "truncated stream decoded to the full input");
        }
    }
}
