//! Model-based property tests for the DDC heap.
//!
//! A reference model (a map of live allocations) is driven in lockstep with
//! the real heap by random malloc/free scripts; the invariants checked are
//! the ones guided paging depends on: allocations never overlap, frees
//! round-trip, and `live_segments` always covers every live byte.

use std::collections::BTreeMap;

use dilos_alloc::{Heap, PageLiveness, PAGE_SIZE};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Malloc(usize),
    /// Free the i-th oldest live allocation (modulo live count).
    Free(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (1usize..9000).prop_map(Op::Malloc),
        2 => (0usize..64).prop_map(Op::Free),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn heap_matches_reference_model(ops in prop::collection::vec(op_strategy(), 1..200)) {
        let base = 0x4000_0000u64;
        let mut heap = Heap::new(base, 1 << 20);
        // Model: va -> requested size.
        let mut model: BTreeMap<u64, usize> = BTreeMap::new();

        for op in ops {
            match op {
                Op::Malloc(size) => {
                    if let Ok(va) = heap.malloc(size) {
                        // In-bounds and non-overlapping with every live alloc.
                        let usable = heap.alloc_size(va).expect("fresh alloc is live");
                        prop_assert!(usable >= size);
                        prop_assert!(va >= base);
                        prop_assert!(va + usable as u64 <= base + heap.capacity());
                        for (&ova, &osz) in &model {
                            let ousable = heap.alloc_size(ova).unwrap_or(osz);
                            prop_assert!(
                                va + usable as u64 <= ova || ova + ousable as u64 <= va,
                                "overlap: new {va:#x}+{usable} vs {ova:#x}+{ousable}"
                            );
                        }
                        model.insert(va, size);
                    }
                }
                Op::Free(i) => {
                    if model.is_empty() {
                        prop_assert_eq!(heap.free(base), Err(dilos_alloc::AllocError::InvalidFree));
                        continue;
                    }
                    let idx = i % model.len();
                    let va = *model.keys().nth(idx).unwrap();
                    prop_assert!(heap.free(va).is_ok());
                    model.remove(&va);
                    prop_assert!(heap.alloc_size(va).is_none());
                }
            }
        }

        // Liveness coverage: every live byte of every allocation must be
        // covered by the page's reported segments.
        for (&va, &size) in &model {
            let usable = heap.alloc_size(va).expect("model allocs are live");
            prop_assert!(usable >= size);
            let mut cursor = va;
            let end = va + usable as u64;
            while cursor < end {
                let page = cursor & !(PAGE_SIZE as u64 - 1);
                let page_end = page + PAGE_SIZE as u64;
                let chunk_end = end.min(page_end);
                match heap.live_segments(page, 3) {
                    PageLiveness::Full => {}
                    PageLiveness::Partial(segs) => {
                        prop_assert!(segs.len() <= 3);
                        let off = (cursor - page) as usize;
                        let len = (chunk_end - cursor) as usize;
                        prop_assert!(
                            segs.iter().any(|&(o, l)| off >= o && off + len <= o + l),
                            "{va:#x} chunk at page {page:#x} not covered by {segs:?}"
                        );
                    }
                    PageLiveness::Empty => {
                        return Err(TestCaseError::fail(format!(
                            "page {page:#x} holds live alloc {va:#x} but reports Empty"
                        )));
                    }
                }
                cursor = chunk_end;
            }
        }

        // Stats must balance against the model.
        let live_pages_used = heap.stats().used_pages;
        if model.is_empty() {
            prop_assert_eq!(live_pages_used, 0);
            prop_assert_eq!(heap.stats().live_bytes, 0);
        } else {
            prop_assert!(live_pages_used > 0);
        }
    }

    #[test]
    fn drain_everything_returns_heap_to_empty(sizes in prop::collection::vec(1usize..5000, 1..100)) {
        let mut heap = Heap::new(0, 1 << 20);
        let mut vas = Vec::new();
        for s in &sizes {
            if let Ok(va) = heap.malloc(*s) {
                vas.push(va);
            }
        }
        for va in vas {
            prop_assert!(heap.free(va).is_ok());
        }
        prop_assert_eq!(heap.stats().used_pages, 0);
        prop_assert_eq!(heap.stats().live_bytes, 0);
        // The heap is fully reusable afterwards.
        prop_assert!(heap.malloc(PAGE_SIZE * 4).is_ok());
    }
}
