//! Mimalloc-style size classes.
//!
//! Small allocations are rounded up to a class from a geometric-ish table
//! (8-byte spacing up to 64 B, then four classes per power of two), so every
//! 4 KiB heap page serves blocks of exactly one size and the per-page bitmap
//! has one bit per block.

use crate::PAGE_SIZE;

/// The size-class table, in bytes. The largest class fills half a page;
/// anything bigger is a *large* allocation served by whole page runs.
pub const SIZE_CLASSES: [usize; 24] = [
    8, 16, 24, 32, 40, 48, 56, 64, 80, 96, 112, 128, 160, 192, 224, 256, 320, 384, 448, 512, 768,
    1024, 1536, 2048,
];

/// A validated index into [`SIZE_CLASSES`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SizeClass(pub(crate) u8);

impl SizeClass {
    /// The block size of this class, in bytes.
    pub fn block_size(self) -> usize {
        // dilos-lint: allow(transitive-panic-freedom, "SizeClass wraps a validated index: size_class_of is the only non-test constructor and bounds it")
        SIZE_CLASSES[self.0 as usize]
    }

    /// Number of blocks of this class that fit in one heap page.
    pub fn blocks_per_page(self) -> usize {
        PAGE_SIZE / self.block_size()
    }

    /// The class index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Returns the smallest size class holding `size` bytes, or `None` if the
/// request is a large allocation (> half page).
pub fn size_class_of(size: usize) -> Option<SizeClass> {
    if size == 0 || size > SIZE_CLASSES[SIZE_CLASSES.len() - 1] {
        return None;
    }
    let idx = SIZE_CLASSES.partition_point(|&c| c < size);
    Some(SizeClass(idx as u8))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_are_strictly_increasing_and_divide_sanely() {
        for w in SIZE_CLASSES.windows(2) {
            assert!(w[0] < w[1]);
        }
        for (i, &c) in SIZE_CLASSES.iter().enumerate() {
            let sc = SizeClass(i as u8);
            assert_eq!(sc.block_size(), c);
            assert!(sc.blocks_per_page() >= 2, "class {c} must pack ≥2 blocks");
        }
    }

    #[test]
    fn lookup_rounds_up() {
        assert_eq!(size_class_of(1).unwrap().block_size(), 8);
        assert_eq!(size_class_of(8).unwrap().block_size(), 8);
        assert_eq!(size_class_of(9).unwrap().block_size(), 16);
        assert_eq!(size_class_of(65).unwrap().block_size(), 80);
        assert_eq!(size_class_of(2048).unwrap().block_size(), 2048);
    }

    #[test]
    fn zero_and_large_have_no_class() {
        assert!(size_class_of(0).is_none());
        assert!(size_class_of(2049).is_none());
        assert!(size_class_of(PAGE_SIZE).is_none());
    }

    #[test]
    fn every_small_size_fits_its_class() {
        for size in 1..=2048usize {
            let c = size_class_of(size).unwrap();
            assert!(c.block_size() >= size);
            // Tightness: the class below (if any) is too small.
            if c.index() > 0 {
                assert!(SIZE_CLASSES[c.index() - 1] < size);
            }
        }
    }
}
