//! Per-page allocation bitmaps.
//!
//! One bit per block of the page's size class. The bitmap is both the
//! allocator's free-block index (replacing mimalloc's free lists, per §6.3)
//! and the liveness oracle guided paging reads when building scatter/gather
//! vectors.

/// A fixed-capacity bitmap over the blocks of one heap page.
///
/// The largest class packs 512 blocks (8 B blocks in a 4 KiB page), so eight
/// `u64` words always suffice.
#[derive(Debug, Clone)]
pub struct PageBitmap {
    words: [u64; 8],
    blocks: u16,
    live: u16,
}

impl PageBitmap {
    /// Creates an all-free bitmap over `blocks` blocks.
    ///
    /// # Panics
    ///
    /// Panics if `blocks` exceeds 512.
    pub fn new(blocks: usize) -> Self {
        assert!(blocks <= 512, "a page holds at most 512 blocks");
        Self {
            words: [0; 8],
            blocks: blocks as u16,
            live: 0,
        }
    }

    /// Number of blocks tracked.
    pub fn blocks(&self) -> usize {
        self.blocks as usize
    }

    /// Number of live (allocated) blocks.
    pub fn live(&self) -> usize {
        self.live as usize
    }

    /// True if no block is live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// True if every block is live.
    pub fn is_full(&self) -> bool {
        self.live == self.blocks
    }

    /// Whether block `i` is live.
    pub fn is_set(&self, i: usize) -> bool {
        debug_assert!(i < self.blocks as usize);
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Marks block `i` live. Returns `false` if it already was.
    pub fn set(&mut self, i: usize) -> bool {
        debug_assert!(i < self.blocks as usize);
        let w = &mut self.words[i / 64];
        let bit = 1u64 << (i % 64);
        if *w & bit != 0 {
            return false;
        }
        *w |= bit;
        self.live += 1;
        true
    }

    /// Marks block `i` free. Returns `false` if it already was.
    pub fn clear(&mut self, i: usize) -> bool {
        debug_assert!(i < self.blocks as usize);
        let w = &mut self.words[i / 64];
        let bit = 1u64 << (i % 64);
        if *w & bit == 0 {
            return false;
        }
        *w &= !bit;
        self.live -= 1;
        true
    }

    /// Finds the lowest free block, if any.
    pub fn first_free(&self) -> Option<usize> {
        for (wi, &w) in self.words.iter().enumerate() {
            let free = !w;
            if free != 0 {
                let i = wi * 64 + free.trailing_zeros() as usize;
                if i < self.blocks as usize {
                    return Some(i);
                }
            }
        }
        None
    }

    /// Iterates over maximal runs of live blocks as `(first, count)` pairs.
    pub fn live_runs(&self) -> LiveRuns<'_> {
        LiveRuns { bm: self, pos: 0 }
    }
}

/// Iterator over maximal live-block runs.
#[derive(Debug)]
pub struct LiveRuns<'a> {
    bm: &'a PageBitmap,
    pos: usize,
}

impl Iterator for LiveRuns<'_> {
    type Item = (usize, usize);

    fn next(&mut self) -> Option<(usize, usize)> {
        let n = self.bm.blocks();
        while self.pos < n && !self.bm.is_set(self.pos) {
            self.pos += 1;
        }
        if self.pos >= n {
            return None;
        }
        let start = self.pos;
        while self.pos < n && self.bm.is_set(self.pos) {
            self.pos += 1;
        }
        Some((start, self.pos - start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_clear_tracks_liveness() {
        let mut b = PageBitmap::new(100);
        assert!(b.is_empty());
        assert!(b.set(5));
        assert!(!b.set(5), "double set reports false");
        assert!(b.is_set(5));
        assert_eq!(b.live(), 1);
        assert!(b.clear(5));
        assert!(!b.clear(5), "double clear reports false");
        assert!(b.is_empty());
    }

    #[test]
    fn first_free_skips_live_prefix() {
        let mut b = PageBitmap::new(8);
        for i in 0..3 {
            b.set(i);
        }
        assert_eq!(b.first_free(), Some(3));
        for i in 3..8 {
            b.set(i);
        }
        assert!(b.is_full());
        assert_eq!(b.first_free(), None);
    }

    #[test]
    fn first_free_crosses_word_boundary() {
        let mut b = PageBitmap::new(130);
        for i in 0..128 {
            b.set(i);
        }
        assert_eq!(b.first_free(), Some(128));
    }

    #[test]
    fn live_runs_are_maximal() {
        let mut b = PageBitmap::new(16);
        for i in [0, 1, 2, 5, 9, 10, 15] {
            b.set(i);
        }
        let runs: Vec<_> = b.live_runs().collect();
        assert_eq!(runs, vec![(0, 3), (5, 1), (9, 2), (15, 1)]);
    }

    #[test]
    fn live_runs_empty_and_full() {
        let b = PageBitmap::new(12);
        assert_eq!(b.live_runs().count(), 0);
        let mut f = PageBitmap::new(12);
        for i in 0..12 {
            f.set(i);
        }
        assert_eq!(f.live_runs().collect::<Vec<_>>(), vec![(0, 12)]);
    }
}
