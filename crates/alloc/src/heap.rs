//! The disaggregated heap: size-class pages, large runs, liveness queries.
//!
//! [`Heap`] hands out virtual addresses inside a fixed DDC region (the range
//! `ddc_malloc` serves). It keeps one [`PageBitmap`] per small-object page;
//! [`Heap::live_segments`] is the allocator-semantics query guided paging
//! (§4.4) performs when evicting or fetching a page: "the guide identifies
//! and returns which chunks in a page are currently used by reading the
//! allocator's memory layout".

use std::collections::HashMap;

use crate::bitmap::PageBitmap;
use crate::size_class::{size_class_of, SizeClass, SIZE_CLASSES};
use crate::PAGE_SIZE;

/// Allocation failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocError {
    /// Zero-byte allocations are rejected.
    ZeroSize,
    /// The heap has no room for the request.
    OutOfMemory,
    /// `free` was called on an address that is not a live allocation start.
    InvalidFree,
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocError::ZeroSize => write!(f, "zero-size allocation"),
            AllocError::OutOfMemory => write!(f, "heap exhausted"),
            AllocError::InvalidFree => write!(f, "free of a non-allocated address"),
        }
    }
}

impl std::error::Error for AllocError {}

#[derive(Debug)]
enum PageState {
    Free,
    Small {
        class: SizeClass,
        bitmap: PageBitmap,
    },
    LargeHead {
        pages: usize,
        len: usize,
    },
    LargeBody,
}

/// What is live within one heap page, as byte ranges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PageLiveness {
    /// The page holds no live data (nothing to transfer).
    Empty,
    /// The whole page is live (fall back to a full-page transfer).
    Full,
    /// Only these `(offset, len)` ranges are live.
    Partial(Vec<(usize, usize)>),
}

/// Heap occupancy statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HeapStats {
    /// Bytes currently handed out (rounded to block sizes).
    pub live_bytes: u64,
    /// Successful allocations.
    pub allocs: u64,
    /// Successful frees.
    pub frees: u64,
    /// Pages currently in use (small or large).
    pub used_pages: usize,
}

/// A size-class-segregated heap over a virtual-address region.
#[derive(Debug)]
pub struct Heap {
    base: u64,
    npages: usize,
    pages: Vec<PageState>,
    /// Partially-filled pages per size class (may contain stale entries;
    /// validated on pop — mimalloc's lazy page-queue maintenance).
    class_pages: Vec<Vec<usize>>,
    /// Next-fit cursor for fresh-page claims.
    cursor: usize,
    free_count: usize,
    large_lens: HashMap<u64, usize>,
    stats: HeapStats,
}

impl Heap {
    /// Creates a heap managing `capacity` bytes of virtual space at `base`.
    ///
    /// # Panics
    ///
    /// Panics unless `base` and `capacity` are page-aligned and the capacity
    /// is non-zero.
    pub fn new(base: u64, capacity: u64) -> Self {
        assert_eq!(base % PAGE_SIZE as u64, 0, "base must be page-aligned");
        assert_eq!(
            capacity % PAGE_SIZE as u64,
            0,
            "capacity must be page-aligned"
        );
        assert!(capacity > 0, "capacity must be non-zero");
        let npages = (capacity / PAGE_SIZE as u64) as usize;
        Self {
            base,
            npages,
            pages: (0..npages).map(|_| PageState::Free).collect(),
            class_pages: vec![Vec::new(); SIZE_CLASSES.len()],
            cursor: 0,
            free_count: npages,
            large_lens: HashMap::new(),
            stats: HeapStats::default(),
        }
    }

    /// The base virtual address of the managed region.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// The managed capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.npages as u64 * PAGE_SIZE as u64
    }

    /// Current occupancy statistics.
    pub fn stats(&self) -> HeapStats {
        self.stats
    }

    fn page_va(&self, idx: usize) -> u64 {
        self.base + (idx * PAGE_SIZE) as u64
    }

    fn page_idx(&self, va: u64) -> Option<usize> {
        if va < self.base {
            return None;
        }
        let idx = ((va - self.base) / PAGE_SIZE as u64) as usize;
        (idx < self.npages).then_some(idx)
    }

    fn claim_free_page(&mut self) -> Option<usize> {
        if self.free_count == 0 {
            return None;
        }
        // First-fit keeps the heap compact, which maximizes block reuse of
        // low pages — the behaviour the guided-paging eval relies on.
        for idx in 0..self.npages {
            if matches!(self.pages[idx], PageState::Free) {
                self.free_count -= 1;
                self.stats.used_pages += 1;
                return Some(idx);
            }
        }
        None
    }

    fn release_page(&mut self, idx: usize) {
        self.pages[idx] = PageState::Free;
        self.free_count += 1;
        self.stats.used_pages -= 1;
    }

    /// Allocates `size` bytes and returns the virtual address.
    pub fn malloc(&mut self, size: usize) -> Result<u64, AllocError> {
        if size == 0 {
            return Err(AllocError::ZeroSize);
        }
        match size_class_of(size) {
            Some(class) => self.malloc_small(class),
            None => self.malloc_large(size),
        }
    }

    fn malloc_small(&mut self, class: SizeClass) -> Result<u64, AllocError> {
        let ci = class.index();
        // Pop stale (full or recycled) entries until a usable page surfaces.
        let page_idx = loop {
            match self.class_pages[ci].last().copied() {
                Some(idx) => match &self.pages[idx] {
                    PageState::Small { class: c, bitmap } if *c == class && !bitmap.is_full() => {
                        break Some(idx)
                    }
                    _ => {
                        self.class_pages[ci].pop();
                    }
                },
                None => break None,
            }
        };
        let idx = match page_idx {
            Some(idx) => idx,
            None => {
                let idx = self.claim_free_page().ok_or(AllocError::OutOfMemory)?;
                self.pages[idx] = PageState::Small {
                    class,
                    bitmap: PageBitmap::new(class.blocks_per_page()),
                };
                self.class_pages[ci].push(idx);
                idx
            }
        };
        let PageState::Small { bitmap, .. } = &mut self.pages[idx] else {
            unreachable!("selected page is a small page");
        };
        // The page was selected (or just created) as non-full above.
        #[allow(clippy::expect_used)]
        let block = bitmap.first_free().expect("page was not full");
        bitmap.set(block);
        if bitmap.is_full() {
            // Leave it in the queue; it is validated away on the next pop.
            self.class_pages[ci].retain(|&p| p != idx);
        }
        self.stats.allocs += 1;
        self.stats.live_bytes += class.block_size() as u64;
        Ok(self.page_va(idx) + (block * class.block_size()) as u64)
    }

    fn malloc_large(&mut self, size: usize) -> Result<u64, AllocError> {
        let need = size.div_ceil(PAGE_SIZE);
        if need > self.free_count {
            return Err(AllocError::OutOfMemory);
        }
        // Linear scan for a contiguous free run (heaps here are small enough
        // that first-fit is fine; runs never wrap).
        let mut run_start = 0usize;
        let mut run = 0usize;
        for idx in 0..self.npages {
            if matches!(self.pages[idx], PageState::Free) {
                if run == 0 {
                    run_start = idx;
                }
                run += 1;
                if run == need {
                    for i in run_start..run_start + need {
                        self.pages[i] = PageState::LargeBody;
                        self.free_count -= 1;
                        self.stats.used_pages += 1;
                    }
                    self.pages[run_start] = PageState::LargeHead {
                        pages: need,
                        len: size,
                    };
                    self.cursor = (run_start + need) % self.npages;
                    let va = self.page_va(run_start);
                    self.large_lens.insert(va, size);
                    self.stats.allocs += 1;
                    self.stats.live_bytes += (need * PAGE_SIZE) as u64;
                    return Ok(va);
                }
            } else {
                run = 0;
            }
        }
        Err(AllocError::OutOfMemory)
    }

    /// Frees the allocation starting at `va`.
    pub fn free(&mut self, va: u64) -> Result<(), AllocError> {
        let idx = self.page_idx(va).ok_or(AllocError::InvalidFree)?;
        let page_va = self.page_va(idx);
        match &mut self.pages[idx] {
            PageState::Small { class, bitmap } => {
                let class = *class;
                let off = (va - page_va) as usize;
                if !off.is_multiple_of(class.block_size()) {
                    return Err(AllocError::InvalidFree);
                }
                let block = off / class.block_size();
                if block >= bitmap.blocks() || !bitmap.clear(block) {
                    return Err(AllocError::InvalidFree);
                }
                self.stats.frees += 1;
                self.stats.live_bytes -= class.block_size() as u64;
                if bitmap.is_empty() {
                    self.class_pages[class.index()].retain(|&p| p != idx);
                    self.release_page(idx);
                } else if !bitmap.is_full() && !self.class_pages[class.index()].contains(&idx) {
                    self.class_pages[class.index()].push(idx);
                }
                Ok(())
            }
            PageState::LargeHead { pages, .. } => {
                if va != page_va {
                    return Err(AllocError::InvalidFree);
                }
                let pages = *pages;
                for i in idx..idx + pages {
                    self.release_page(i);
                }
                self.large_lens.remove(&va);
                self.stats.frees += 1;
                self.stats.live_bytes -= (pages * PAGE_SIZE) as u64;
                Ok(())
            }
            _ => Err(AllocError::InvalidFree),
        }
    }

    /// Returns the usable size of the live allocation at `va`, if any.
    pub fn alloc_size(&self, va: u64) -> Option<usize> {
        let idx = self.page_idx(va)?;
        match &self.pages[idx] {
            PageState::Small { class, bitmap } => {
                let off = (va - self.page_va(idx)) as usize;
                if !off.is_multiple_of(class.block_size()) {
                    return None;
                }
                let block = off / class.block_size();
                (block < bitmap.blocks() && bitmap.is_set(block)).then(|| class.block_size())
            }
            PageState::LargeHead { len, .. } => (va == self.page_va(idx)).then_some(*len),
            _ => None,
        }
    }

    /// Reports what is live within the page containing `page_va`.
    ///
    /// This is the allocator-semantics query the paging guide performs.
    /// `max_segments` caps the vector length (the paper's guide uses three —
    /// vectored RDMA slows down beyond that, §6.3); extra runs are coalesced
    /// by absorbing the smallest gaps, so the result always *covers* every
    /// live byte.
    pub fn live_segments(&self, page_va: u64, max_segments: usize) -> PageLiveness {
        let Some(idx) = self.page_idx(page_va) else {
            return PageLiveness::Full;
        };
        let Some(state) = self.pages.get(idx) else {
            return PageLiveness::Full;
        };
        match state {
            PageState::Free => PageLiveness::Empty,
            PageState::LargeHead { .. } | PageState::LargeBody => PageLiveness::Full,
            PageState::Small { class, bitmap } => {
                if bitmap.is_empty() {
                    return PageLiveness::Empty;
                }
                if bitmap.is_full() {
                    return PageLiveness::Full;
                }
                let bs = class.block_size();
                let mut runs: Vec<(usize, usize)> =
                    bitmap.live_runs().map(|(b, n)| (b * bs, n * bs)).collect();
                coalesce_to(&mut runs, max_segments.max(1));
                if runs.len() == 1 && runs[0] == (0, PAGE_SIZE) {
                    PageLiveness::Full
                } else {
                    PageLiveness::Partial(runs)
                }
            }
        }
    }
}

/// Coalesces `(offset, len)` runs to at most `k` by merging across the
/// smallest inter-run gaps.
fn coalesce_to(runs: &mut Vec<(usize, usize)>, k: usize) {
    while runs.len() > k {
        // Find the smallest gap between consecutive runs.
        let mut best = 0;
        let mut best_gap = usize::MAX;
        for (i, w) in runs.windows(2).enumerate() {
            let gap = w[1].0 - (w[0].0 + w[0].1);
            if gap < best_gap {
                best_gap = gap;
                best = i;
            }
        }
        let (o2, l2) = runs.remove(best + 1);
        if let Some(r) = runs.get_mut(best) {
            r.1 = (o2 + l2) - r.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heap() -> Heap {
        Heap::new(0x1000_0000, 1 << 20) // 256 pages.
    }

    #[test]
    fn small_allocations_pack_into_one_page() {
        let mut h = heap();
        let a = h.malloc(64).unwrap();
        let b = h.malloc(64).unwrap();
        assert_eq!(b - a, 64, "blocks are adjacent");
        assert_eq!(a / PAGE_SIZE as u64, b / PAGE_SIZE as u64);
        assert_eq!(h.stats().used_pages, 1);
    }

    #[test]
    fn different_classes_use_different_pages() {
        let mut h = heap();
        let a = h.malloc(64).unwrap();
        let b = h.malloc(200).unwrap();
        assert_ne!(a / PAGE_SIZE as u64, b / PAGE_SIZE as u64);
        assert_eq!(h.alloc_size(a), Some(64));
        assert_eq!(h.alloc_size(b), Some(224));
    }

    #[test]
    fn free_recycles_blocks_and_pages() {
        let mut h = heap();
        let a = h.malloc(128).unwrap();
        h.free(a).unwrap();
        assert_eq!(h.stats().used_pages, 0);
        let b = h.malloc(128).unwrap();
        assert_eq!(a, b, "freed block is reused");
    }

    #[test]
    fn large_allocations_take_page_runs() {
        let mut h = heap();
        let a = h.malloc(3 * PAGE_SIZE + 1).unwrap();
        assert_eq!(a % PAGE_SIZE as u64, 0);
        assert_eq!(h.stats().used_pages, 4);
        assert_eq!(h.alloc_size(a), Some(3 * PAGE_SIZE + 1));
        h.free(a).unwrap();
        assert_eq!(h.stats().used_pages, 0);
    }

    #[test]
    fn oom_is_reported_not_panicked() {
        let mut h = Heap::new(0, 2 * PAGE_SIZE as u64);
        assert!(h.malloc(3 * PAGE_SIZE).is_err());
        h.malloc(PAGE_SIZE + 1).unwrap();
        assert_eq!(h.malloc(PAGE_SIZE + 1), Err(AllocError::OutOfMemory));
        // Small allocations can still be served from... nothing: both pages
        // are taken by the large run.
        assert_eq!(h.malloc(8), Err(AllocError::OutOfMemory));
    }

    #[test]
    fn invalid_frees_are_rejected() {
        let mut h = heap();
        let a = h.malloc(64).unwrap();
        assert_eq!(h.free(a + 1), Err(AllocError::InvalidFree));
        assert_eq!(h.free(a + 64), Err(AllocError::InvalidFree));
        assert_eq!(h.free(0), Err(AllocError::InvalidFree));
        h.free(a).unwrap();
        assert_eq!(h.free(a), Err(AllocError::InvalidFree), "double free");
    }

    #[test]
    fn live_segments_reflect_the_bitmap() {
        let mut h = heap();
        // Fill a 512-byte-class page (8 blocks), then free the middle.
        let vas: Vec<u64> = (0..8).map(|_| h.malloc(512).unwrap()).collect();
        let page = vas[0] & !(PAGE_SIZE as u64 - 1);
        assert_eq!(h.live_segments(page, 3), PageLiveness::Full);
        for &v in &vas[2..6] {
            h.free(v).unwrap();
        }
        match h.live_segments(page, 3) {
            PageLiveness::Partial(segs) => {
                assert_eq!(segs, vec![(0, 1024), (3072, 1024)]);
            }
            other => panic!("expected partial liveness, got {other:?}"),
        }
        for &v in vas[..2].iter().chain(&vas[6..]) {
            h.free(v).unwrap();
        }
        assert_eq!(h.live_segments(page, 3), PageLiveness::Empty);
    }

    #[test]
    fn live_segments_coalesce_to_cap_and_still_cover() {
        let mut h = heap();
        let vas: Vec<u64> = (0..64).map(|_| h.malloc(64).unwrap()).collect();
        let page = vas[0] & !(PAGE_SIZE as u64 - 1);
        // Free every other block: 32 runs of one block each.
        for v in vas.iter().skip(1).step_by(2) {
            h.free(*v).unwrap();
        }
        let PageLiveness::Partial(segs) = h.live_segments(page, 3) else {
            panic!("expected partial");
        };
        assert!(segs.len() <= 3);
        // Every live block must be covered by some segment.
        for (i, v) in vas.iter().enumerate().step_by(2) {
            let off = (*v - page) as usize;
            assert!(
                segs.iter().any(|&(o, l)| off >= o && off + 64 <= o + l),
                "block {i} uncovered"
            );
        }
    }

    #[test]
    fn large_pages_report_full_liveness() {
        let mut h = heap();
        let a = h.malloc(2 * PAGE_SIZE).unwrap();
        assert_eq!(h.live_segments(a, 3), PageLiveness::Full);
        assert_eq!(h.live_segments(a + PAGE_SIZE as u64, 3), PageLiveness::Full);
    }

    #[test]
    fn stats_balance() {
        let mut h = heap();
        let mut vas = Vec::new();
        for i in 1..100 {
            vas.push(h.malloc(i * 7 % 1500 + 1).unwrap());
        }
        for va in vas {
            h.free(va).unwrap();
        }
        let s = h.stats();
        assert_eq!(s.allocs, 99);
        assert_eq!(s.frees, 99);
        assert_eq!(s.live_bytes, 0);
        assert_eq!(s.used_pages, 0);
    }
}
