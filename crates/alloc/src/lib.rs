//! A mimalloc-flavoured user-level allocator with per-page liveness bitmaps.
//!
//! §5 of the DiLOS paper: "The app-aware allocator guide of DiLOS is based on
//! Microsoft's mimalloc … DiLOS' allocator tracks subpage usages via
//! bitmaps", and §6.3: "The original mimalloc uses a list to track freed
//! chunks. We modify the mimalloc code to use bitmaps to track freed chunks."
//!
//! This crate reimplements that allocator design from scratch:
//!
//! - size-class-segregated allocation (mimalloc-style class spacing),
//! - each 4 KiB heap page serves blocks of exactly one size class,
//! - a **per-page allocation bitmap** records which blocks are live,
//! - large allocations take contiguous page runs,
//! - [`Heap::live_segments`] coalesces the bitmap into at most `max_segments`
//!   covering ranges — the scatter/gather vectors guided paging (§4.4) posts
//!   instead of whole-page transfers.
//!
//! The allocator manages *virtual addresses* in a disaggregated heap; it
//! never touches the bytes itself, so the same instance can serve a DiLOS
//! node, the Redis workload, and the paging guide simultaneously.

mod bitmap;
mod heap;
mod size_class;

pub use bitmap::PageBitmap;
pub use heap::{AllocError, Heap, HeapStats, PageLiveness};
pub use size_class::{size_class_of, SizeClass, SIZE_CLASSES};

/// The heap page size (matches the OS/DiLOS page size).
pub const PAGE_SIZE: usize = 4096;
