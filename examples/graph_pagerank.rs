//! Multi-threaded graph processing on far memory: the Figure 9 scenario.
//!
//! Builds a Kronecker power-law graph in disaggregated memory and runs
//! PageRank with four simulated threads on DiLOS and Fastswap.
//!
//! ```text
//! cargo run --release --example graph_pagerank
//! ```

use dilos::apps::farmem::{SystemKind, SystemSpec};
use dilos::apps::gapbs::GraphWorkload;

fn main() {
    let wl = GraphWorkload {
        scale: 11,
        edge_factor: 16,
        seed: 4,
        threads: 4,
    };
    println!(
        "Kronecker graph: {} vertices, ~{} edges, 4 threads, 25 % local memory\n",
        wl.vertices(),
        wl.vertices() * wl.edge_factor
    );

    let mut top_from_dilos: Option<Vec<usize>> = None;
    for kind in [SystemKind::DilosReadahead, SystemKind::Fastswap] {
        let mut spec = SystemSpec::for_working_set(kind, wl.working_set(), 25);
        spec.cores = wl.threads;
        let mut mem = spec.boot();
        let g = wl.build(mem.as_mut());
        let (scores, elapsed) = wl.pagerank(mem.as_mut(), &g, 10);

        // The five highest-ranked vertices.
        let mut idx: Vec<usize> = (0..scores.len()).collect();
        idx.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).expect("finite"));
        let top: Vec<usize> = idx[..5].to_vec();
        println!(
            "{:<20} PageRank x10 in {:>8.2} ms; top vertices {:?}",
            mem.label(),
            elapsed as f64 / 1e6,
            top
        );
        match &top_from_dilos {
            None => top_from_dilos = Some(top),
            Some(t) => assert_eq!(*t, top, "ranking must be system-independent"),
        }
    }

    println!("\nBoth systems agree on the ranking; DiLOS spends less time in fault handling.");
}
