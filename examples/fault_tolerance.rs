//! Memory-node failure, survived: the §5.1 future-work extension running.
//!
//! Boots DiLOS against a pool of three memory nodes with 2-way page
//! replication and durable crash-recovery state (checkpoints + a
//! write-intent log), pushes a working set out to the pool, kills a node,
//! and keeps running. The whole run is audited: beyond correct reads, every
//! traced invariant — including "no acknowledged write lost" and "no frame
//! resurrected" — must hold through the outage and the repair.
//!
//! ```text
//! cargo run --release --example fault_tolerance
//! ```

use dilos::core::{Dilos, DilosConfig, Readahead};
use dilos::sim::{Observability, RecoverConfig};

fn main() {
    let mut node = Dilos::new(DilosConfig {
        local_pages: 128,
        remote_bytes: 1 << 26,
        memory_nodes: 3,
        replication: 2,
        recovery: Some(RecoverConfig::default()),
        obs: Observability::audited(),
        ..DilosConfig::default()
    });
    node.set_prefetcher(Box::new(Readahead::new()));
    println!("compute node up: 3 memory nodes, 2-way replication, 512 KiB local cache");
    println!("durable state armed: checkpoints + write-intent log on every memory node\n");

    // A 4 MiB working set: most of it lives on the memory-node pool.
    let pages = 1024u64;
    let va = node.ddc_alloc(pages as usize * 4096);
    for p in 0..pages {
        node.write_u64(0, va + p * 4096, p.wrapping_mul(0xABCD));
    }
    let (tx, _) = node.rdma().total_bytes();
    println!(
        "populated {} pages; {:.1} MiB written back to the pool (2 copies each)",
        pages,
        tx as f64 / (1 << 20) as f64
    );

    // Disaster strikes.
    node.fail_memory_node(1);
    println!("\n*** memory node 1 just died ***\n");

    // The application never notices: every page reads back correctly.
    let t0 = node.now(0);
    let mut errors = 0u64;
    for p in 0..pages {
        if node.read_u64(0, va + p * 4096) != p.wrapping_mul(0xABCD) {
            errors += 1;
        }
    }
    let elapsed = node.now(0) - t0;
    println!("re-read all {pages} pages: {errors} corrupted");
    println!(
        "failovers: {} reads served by replicas; one-time detection cost {:.2} ms",
        node.rdma().failovers(),
        node.config().sim.failover_detect_ns as f64 / 1e6
    );
    println!(
        "re-read took {:.2} ms of virtual time",
        elapsed as f64 / 1e6
    );

    // And the system keeps making progress on the survivors.
    let vb = node.ddc_alloc(512 * 4096);
    for p in 0..512u64 {
        node.write_u64(0, vb + p * 4096, p);
    }
    for p in 0..512u64 {
        assert_eq!(node.read_u64(0, vb + p * 4096), p);
    }
    println!(
        "\nnew working set allocated, evicted, and re-fetched on the surviving nodes — all good"
    );

    // An operator schedules the repair for 5 ms out (virtual time). The
    // event calendar dispatches it mid-workload: node 1 comes back online
    // and resynchronizes from the surviving replicas, and subsequent reads
    // stop paying the failover path.
    let repair_at = node.now(0) + 5_000_000;
    node.schedule_memory_node_repair(repair_at, 1);
    println!(
        "\nrepair of node 1 scheduled at t = {:.2} ms",
        repair_at as f64 / 1e6
    );

    let failovers_before = node.rdma().failovers();
    let mut sweeps = 0u32;
    while node.now(0) < repair_at + 1_000_000 {
        for p in 0..pages {
            assert_eq!(node.read_u64(0, va + p * 4096), p.wrapping_mul(0xABCD));
        }
        sweeps += 1;
    }
    println!(
        "node 1 repaired mid-workload ({} sweeps, {} failovers during the outage window); \
         pool healthy again at t = {:.2} ms",
        sweeps,
        node.rdma().failovers() - failovers_before,
        node.now(0) as f64 / 1e6
    );
    assert!(node.rdma().node_alive(1), "repair event must have landed");

    let stats = node.recovery_stats();
    println!(
        "recovery replayed {} intent records and reconciled {} pages from \
         the survivors ({:.2} ms modeled)",
        stats.replayed,
        stats.reconciled,
        stats.recovery_ns as f64 / 1e6
    );

    // The auditor watched the whole run — outage, failovers, replay,
    // resync — and every invariant must have held.
    let report = node.audit_report();
    assert!(report.is_empty(), "audit violations: {report:#?}");
    println!("audit: clean — no acknowledged write lost, no frame resurrected");
}
