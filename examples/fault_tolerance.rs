//! Memory-node failure, survived: the §5.1 future-work extension running.
//!
//! Boots DiLOS against a pool of three memory nodes with 2-way page
//! replication, pushes a working set out to the pool, kills a node, and
//! keeps running.
//!
//! ```text
//! cargo run --release --example fault_tolerance
//! ```

use dilos::core::{Dilos, DilosConfig, Readahead};

fn main() {
    let mut node = Dilos::new(DilosConfig {
        local_pages: 128,
        remote_bytes: 1 << 26,
        memory_nodes: 3,
        replication: 2,
        ..DilosConfig::default()
    });
    node.set_prefetcher(Box::new(Readahead::new()));
    println!("compute node up: 3 memory nodes, 2-way replication, 512 KiB local cache\n");

    // A 4 MiB working set: most of it lives on the memory-node pool.
    let pages = 1024u64;
    let va = node.ddc_alloc(pages as usize * 4096);
    for p in 0..pages {
        node.write_u64(0, va + p * 4096, p.wrapping_mul(0xABCD));
    }
    let (tx, _) = node.rdma().total_bytes();
    println!(
        "populated {} pages; {:.1} MiB written back to the pool (2 copies each)",
        pages,
        tx as f64 / (1 << 20) as f64
    );

    // Disaster strikes.
    node.fail_memory_node(1);
    println!("\n*** memory node 1 just died ***\n");

    // The application never notices: every page reads back correctly.
    let t0 = node.now(0);
    let mut errors = 0u64;
    for p in 0..pages {
        if node.read_u64(0, va + p * 4096) != p.wrapping_mul(0xABCD) {
            errors += 1;
        }
    }
    let elapsed = node.now(0) - t0;
    println!("re-read all {pages} pages: {errors} corrupted");
    println!(
        "failovers: {} reads served by replicas; one-time detection cost {:.2} ms",
        node.rdma().failovers(),
        node.config().sim.failover_detect_ns as f64 / 1e6
    );
    println!(
        "re-read took {:.2} ms of virtual time",
        elapsed as f64 / 1e6
    );

    // And the system keeps making progress on the survivors.
    let vb = node.ddc_alloc(512 * 4096);
    for p in 0..512u64 {
        node.write_u64(0, vb + p * 4096, p);
    }
    for p in 0..512u64 {
        assert_eq!(node.read_u64(0, vb + p * 4096), p);
    }
    println!(
        "\nnew working set allocated, evicted, and re-fetched on the surviving nodes — all good"
    );
}
