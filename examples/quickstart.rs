//! Quickstart: boot a DiLOS compute node, run an application on
//! disaggregated memory, and inspect what the paging subsystem did.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dilos::core::{Dilos, DilosConfig, Readahead};

fn main() {
    // A compute node with 256 local pages (1 MiB of local DRAM) backed by a
    // simulated memory node over the calibrated RDMA fabric.
    let mut node = Dilos::new(DilosConfig {
        local_pages: 256,
        remote_bytes: 1 << 26,
        ..DilosConfig::default()
    });
    node.set_prefetcher(Box::new(Readahead::new()));

    // `ddc_alloc` is the `ddc_malloc` path of the compatibility layer: the
    // returned memory is zero-fill-on-touch and transparently migrated
    // between local DRAM and the memory node.
    let bytes = 4 << 20; // A 4 MiB working set: 4× the local cache.
    let va = node.ddc_alloc(bytes);
    println!(
        "allocated {} MiB of disaggregated memory at {va:#x}",
        bytes >> 20
    );

    // Touch every page: the first pass is zero-fill (no network)…
    let pages = (bytes / 4096) as u64;
    for p in 0..pages {
        node.write_u64(0, va + p * 4096, p * p);
    }
    let populate_done = node.now(0);

    // …and the second pass streams pages back from the memory node, with
    // readahead hiding most of the fetch latency.
    for p in 0..pages {
        assert_eq!(node.read_u64(0, va + p * 4096), p * p);
    }
    let read_done = node.now(0);

    let s = node.stats();
    println!(
        "\nvirtual time: populate {:.2} ms, read-back {:.2} ms",
        populate_done as f64 / 1e6,
        (read_done - populate_done) as f64 / 1e6
    );
    println!("zero-fill faults : {}", s.zero_fills);
    println!("major faults     : {}", s.major_faults);
    println!(
        "minor faults     : {} (touched while the prefetch was in flight)",
        s.minor_faults
    );
    println!("pages prefetched : {}", s.prefetch_issued);
    println!(
        "evictions        : {} ({} with writeback)",
        s.evictions, s.writebacks
    );
    println!(
        "avg fault latency: {:.2} µs (paper Figure 6: ~2.8 µs)",
        s.breakdown.avg_total() as f64 / 1e3
    );
    let read_gbps = bytes as f64 / (read_done - populate_done) as f64;
    println!("read throughput  : {read_gbps:.2} GB/s");
}
