//! The Figure 8 scenario as an application: one analytics program, three
//! far-memory systems, zero code changes.
//!
//! ```text
//! cargo run --release --example taxi_analytics
//! ```

use dilos::apps::dataframe::TaxiWorkload;
use dilos::apps::farmem::{SystemKind, SystemSpec};

fn main() {
    let wl = TaxiWorkload {
        rows: 20_000,
        seed: 2026,
    };
    println!(
        "NYC-taxi-style analysis over {} trips ({:.1} MiB working set), 25 % local memory\n",
        wl.rows,
        wl.working_set() as f64 / (1 << 20) as f64
    );

    let mut reference = None;
    for kind in [
        SystemKind::Fastswap,
        SystemKind::DilosReadahead,
        SystemKind::DilosTcp,
        SystemKind::Aifm,
    ] {
        let mut mem = SystemSpec::for_working_set(kind, wl.working_set(), 25).boot();
        let table = wl.populate(mem.as_mut());
        let a = wl.analyze(mem.as_mut(), &table);
        println!(
            "{:<18} completion {:>8.2} ms   (faults: {:?})",
            mem.label(),
            a.elapsed as f64 / 1e6,
            mem.fault_counts(),
        );
        // The answers must be identical regardless of the memory system —
        // that is the compatibility claim.
        let answers = (
            a.multi_passenger_trips,
            a.p90_duration,
            (a.avg_haversine * 1e6) as u64,
        );
        match &reference {
            None => {
                reference = Some(answers);
                println!(
                    "  -> {} multi-passenger trips, p90 duration {} s, avg haversine {:.2} mi",
                    a.multi_passenger_trips, a.p90_duration, a.avg_haversine
                );
            }
            Some(r) => assert_eq!(*r, answers, "results must be system-independent"),
        }
    }
    println!("\nAll systems computed identical results; only the virtual time differs.");
}
