//! App-aware guides in action: a Redis-like store under memory pressure,
//! with and without the §6.3 prefetch guide and §4.4 guided paging.
//!
//! ```text
//! cargo run --release --example redis_guided
//! ```

use std::cell::RefCell;
use std::rc::Rc;

use dilos::alloc::Heap;
use dilos::apps::farmem::Introspect;
use dilos::apps::redis::{LrangeBench, RedisBench, RedisGuide, RedisServer, ValueSizes};
use dilos::core::{Dilos, DilosConfig, HeapPagingGuide, Readahead};

fn boot(guided: bool, local_pages: usize) -> (Dilos, RedisServer) {
    let heap_bytes: u64 = 16 << 20;
    let mut node = Dilos::new(DilosConfig {
        local_pages,
        remote_bytes: 1 << 26,
        ..DilosConfig::default()
    });
    node.set_prefetcher(Box::new(Readahead::new()));
    let base = node.ddc_alloc(heap_bytes as usize);
    let heap = Rc::new(RefCell::new(Heap::new(base, heap_bytes)));
    let mut server = RedisServer::new(Rc::clone(&heap), &mut node, 4096);
    if guided {
        let guide = Rc::new(RefCell::new(RedisGuide::new()));
        node.set_prefetch_guide(guide.clone());
        node.set_paging_guide(Rc::new(RefCell::new(HeapPagingGuide::new(heap, 3))));
        server.attach_guide(guide);
    }
    (node, server)
}

fn main() {
    println!("LRANGE_100 over 32 lists of ~300 large elements, 12.5 %-class local cache\n");
    for guided in [false, true] {
        let (mut node, mut server) = boot(guided, 256);
        let bench = LrangeBench {
            lists: 32,
            elements: 9_600,
            elem_size: 400,
            seed: 7,
        };
        bench.populate(&mut server, &mut node);
        let r = bench.run(&mut server, &mut node, 200);
        let label = if guided {
            "app-aware guide"
        } else {
            "no guide       "
        };
        println!(
            "{label}: {:>8.0} req/s   p99 {:.2} ms   subpage fetches {}",
            r.qps(),
            r.latency.quantile(0.99) as f64 / 1e6,
            node.stats().subpage_fetches,
        );
    }

    println!("\nGET over a 70 %-deleted keyspace (guided paging bandwidth)\n");
    for guided in [false, true] {
        let (mut node, mut server) = boot(guided, 48);
        let bench = RedisBench {
            keys: 8_192,
            sizes: ValueSizes::Fixed(128),
            seed: 9,
        };
        bench.populate(&mut server, &mut node);
        let deleted = bench.run_dels(&mut server, &mut node, 70);
        let (tx0, rx0) = Introspect::net_bytes(&node);
        bench.run_gets_surviving(&mut server, &mut node, &deleted, 1_000);
        let (tx1, rx1) = Introspect::net_bytes(&node);
        let label = if guided {
            "guided paging  "
        } else {
            "full-page      "
        };
        println!(
            "{label}: {:>9} bytes on the wire during GETs (saved {} fetch bytes total)",
            (tx1 - tx0) + (rx1 - rx0),
            node.stats().fetch_bytes_saved,
        );
    }
    println!("\nThe guide transfers only live allocator chunks — the Figure 12 effect.");
}
