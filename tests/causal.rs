//! Causal tracing, enforced: arming the per-request tracer and exporting
//! timelines must never perturb the simulation.
//!
//! Three contracts from the causal-tracing layer:
//!
//! 1. **Digest purity** — a run with the timeline armed emits the exact
//!    event stream of an unarmed run (compared via the order-sensitive
//!    trace digest), on every system at two cache ratios, and the tab01
//!    table still lands on its pinned digests.
//! 2. **Schema** — `timeline.json` is valid Chrome trace-event JSON (the
//!    format Perfetto and `chrome://tracing` load), checked by an actual
//!    parse, not a substring probe.
//! 3. **Byte stability** — two fresh boots produce byte-identical
//!    `timeline.json` / `serve_timeline.json` / `tail.md` / `tail.json`
//!    and an identical `BENCH_sim.json` census (everything outside the
//!    single `"wall_clock"` line).

use dilos::apps::farmem::{FarMemory, SystemKind, SystemSpec};
use dilos::sim::Observability;
use dilos_bench::micro::MicroScale;
use dilos_bench::serve::ServeScale;
use dilos_bench::simbench::{census_json, census_serve, census_tab01};
use dilos_bench::timeline::{chrome_trace_json, collect_timeline, write_timeline_artifacts};

/// SplitMix64: the same deterministic driver as `tests/determinism.rs`.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

const WS_PAGES: u64 = 192;

fn drive(mem: &mut dyn FarMemory, seed: u64) {
    let va = mem.alloc((WS_PAGES * 4096) as usize);
    for p in 0..WS_PAGES {
        mem.write_u64(0, va + p * 4096, seed ^ p);
    }
    let mut rng = Rng(seed);
    for _ in 0..600 {
        let p = rng.next() % WS_PAGES;
        let addr = va + p * 4096 + (rng.next() % 500) * 8;
        if rng.next().is_multiple_of(3) {
            mem.write_u64(0, addr, rng.next());
        } else {
            let _ = mem.read_u64(0, addr);
        }
    }
    for p in (0..WS_PAGES).step_by(3) {
        let _ = mem.read_u64(0, va + p * 4096);
    }
}

fn digest_of(kind: SystemKind, ratio: u32, obs: Observability) -> (u64, Observability) {
    let spec = SystemSpec::for_working_set(kind, WS_PAGES * 4096, ratio).observed(obs.clone());
    let mut mem = spec.boot();
    drive(mem.as_mut(), 0xCA05A1);
    (mem.trace_digest(), obs)
}

#[test]
fn timeline_leaves_trace_digests_unchanged() {
    for kind in [
        SystemKind::DilosReadahead,
        SystemKind::DilosTrend,
        SystemKind::Fastswap,
        SystemKind::Aifm,
    ] {
        for ratio in [13u32, 100] {
            let (plain, _) = digest_of(kind, ratio, Observability::tracing());
            let (armed, obs) = digest_of(kind, ratio, Observability::tracing().with_timeline());
            assert_ne!(plain, 0, "{} @ {ratio}%: trace must record", kind.label());
            assert_eq!(
                plain,
                armed,
                "{} @ {ratio}%: the causal tracer perturbed the trace",
                kind.label()
            );
            // AIFM is object-granular and assigns no page-request ids; the
            // tracer must still be a pure observer there (checked above),
            // it just has nothing to assemble.
            if kind != SystemKind::Aifm {
                assert!(
                    obs.causal().request_count() > 0,
                    "{} @ {ratio}%: armed run assembled no span trees",
                    kind.label()
                );
            }
        }
    }
}

/// The acceptance pin: tab01 digests with the timeline armed equal the
/// digests the table has pinned since PR 1.
#[test]
fn tab01_digests_pinned_with_timeline_armed() {
    let tracks = collect_timeline(MicroScale::default());
    for (id, digest) in [
        ("dilos-noprefetch", 0x16731fc2dfab62cb_u64),
        ("dilos-readahead", 0x19ed7dbb10f8648a),
        ("dilos-trend", 0x367878bd711bc5bf),
    ] {
        assert!(
            tracks.iter().any(|t| t.label == id && t.digest == digest),
            "{id}: pinned digest {digest:#018x} missing or changed: {:?}",
            tracks
                .iter()
                .map(|t| (t.label.clone(), format!("{:#018x}", t.digest)))
                .collect::<Vec<_>>()
        );
    }
    let fastswap = tracks.iter().find(|t| t.label == "fastswap");
    assert!(
        fastswap.is_some_and(|t| t.digest != 0 && t.tracer.request_count() > 0),
        "fastswap track missing from the armed run"
    );
}

// --- a minimal JSON parser, enough to validate the trace-event schema ---

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Self {
            s: s.as_bytes(),
            i: 0,
        }
    }

    fn ws(&mut self) {
        while self.i < self.s.len() && self.s[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        self.ws();
        if self.s.get(self.i) == Some(&b) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.i,
                self.s.get(self.i).map(|&c| c as char)
            ))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.ws();
        self.s.get(self.i).copied()
    }

    fn literal(&mut self, lit: &str, val: Json) -> Result<Json, String> {
        if self.s[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(val)
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        while let Some(&b) = self.s.get(self.i) {
            self.i += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self.s.get(self.i).ok_or("dangling escape")?;
                    self.i += 1;
                    out.push(match esc {
                        b'n' => '\n',
                        b't' => '\t',
                        b'u' => {
                            let hex = self.s.get(self.i..self.i + 4).ok_or("short \\u")?;
                            self.i += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            char::from_u32(code).ok_or("bad \\u code point")?
                        }
                        c => c as char,
                    });
                }
                c => out.push(c as char),
            }
        }
        Err("unterminated string".into())
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        while let Some(&b) = self.s.get(self.i) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.i += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.s[start..self.i])
            .map_err(|e| e.to_string())?
            .parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number at byte {start}: {e}"))
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek().ok_or("unexpected end of input")? {
            b'{' => {
                self.eat(b'{')?;
                let mut fields = Vec::new();
                if self.peek() == Some(b'}') {
                    self.eat(b'}')?;
                    return Ok(Json::Obj(fields));
                }
                loop {
                    self.ws();
                    let key = self.string()?;
                    self.eat(b':')?;
                    fields.push((key, self.value()?));
                    match self.peek() {
                        Some(b',') => self.eat(b',')?,
                        _ => break,
                    }
                }
                self.eat(b'}')?;
                Ok(Json::Obj(fields))
            }
            b'[' => {
                self.eat(b'[')?;
                let mut items = Vec::new();
                if self.peek() == Some(b']') {
                    self.eat(b']')?;
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    match self.peek() {
                        Some(b',') => self.eat(b',')?,
                        _ => break,
                    }
                }
                self.eat(b']')?;
                Ok(Json::Arr(items))
            }
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            _ => self.number(),
        }
    }

    fn parse(mut self) -> Result<Json, String> {
        let v = self.value()?;
        self.ws();
        if self.i == self.s.len() {
            Ok(v)
        } else {
            Err(format!("trailing garbage at byte {}", self.i))
        }
    }
}

#[test]
fn timeline_json_is_valid_chrome_trace_event_json() {
    let tracks = collect_timeline(MicroScale {
        pages: 256,
        ratio: 25,
    });
    let pairs: Vec<(String, &dilos::sim::CausalTracer)> = tracks
        .iter()
        .map(|t| (t.label.clone(), &t.tracer))
        .collect();
    let json = chrome_trace_json(&pairs);
    let doc = Parser::new(&json)
        .parse()
        .expect("timeline.json must parse");
    let events = match doc.get("traceEvents") {
        Some(Json::Arr(events)) => events,
        other => panic!("traceEvents must be an array, got {other:?}"),
    };
    assert!(events.len() > 100, "suspiciously empty timeline");
    let mut saw_meta = 0u32;
    let mut saw_complete = 0u32;
    for ev in events {
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .unwrap_or_else(|| panic!("event without ph: {ev:?}"));
        assert!(
            matches!(ev.get("pid"), Some(Json::Num(_))),
            "event without numeric pid: {ev:?}"
        );
        assert!(
            matches!(ev.get("name"), Some(Json::Str(_))),
            "event without name: {ev:?}"
        );
        match ph {
            "M" => {
                saw_meta += 1;
                let name = ev.get("name").and_then(Json::as_str).unwrap_or("");
                assert!(
                    name == "process_name" || name == "thread_name",
                    "unknown metadata record: {name}"
                );
            }
            "X" => {
                saw_complete += 1;
                for key in ["ts", "dur", "tid"] {
                    assert!(
                        matches!(ev.get(key), Some(Json::Num(_))),
                        "complete event without numeric {key}: {ev:?}"
                    );
                }
            }
            other => panic!("unexpected phase {other:?}"),
        }
    }
    assert!(saw_meta >= 8, "process/thread metadata missing");
    assert!(saw_complete > 100, "no spans exported");
}

#[test]
fn timeline_artifacts_and_bench_census_are_byte_identical_across_boots() {
    let micro = MicroScale {
        pages: 256,
        ratio: 25,
    };
    let serve = ServeScale {
        victim_requests: 60,
        victim_mean_ns: 50_000,
        noisy_requests: 30,
    };
    let files = [
        "timeline.json",
        "serve_timeline.json",
        "tail.md",
        "tail.json",
    ];
    let run = |tag: &str| {
        let dir = std::env::temp_dir().join(format!("dilos-causal-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        write_timeline_artifacts(micro, serve, &dir.to_string_lossy()).expect("write artifacts");
        let contents: Vec<String> = files
            .iter()
            .map(|f| std::fs::read_to_string(dir.join(f)).expect("read artifact"))
            .collect();
        let _ = std::fs::remove_dir_all(&dir);
        contents
    };
    let a = run("a");
    let b = run("b");
    for (i, f) in files.iter().enumerate() {
        assert_eq!(a[i], b[i], "{f} differs across fresh boots");
        assert!(!a[i].is_empty(), "{f} is empty");
    }
    // The sim_bench census — the deterministic remainder of BENCH_sim.json
    // once the single "wall_clock" line is stripped — must also be stable.
    let ca = census_json(&[census_tab01(micro), census_serve(serve)]);
    let cb = census_json(&[census_tab01(micro), census_serve(serve)]);
    assert_eq!(ca, cb, "sim_bench census diverged across runs");
    assert!(!ca.contains("wall_clock"), "census leaked host timing");
}
