//! Tier-1 gate: the workspace is `dilos-lint` clean, every suppression in
//! the tree is both justified (has a reason) and live (actually shields a
//! violation), and the linter's machine output is deterministic.

use std::path::Path;

fn scan() -> dilos_lint::Report {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    dilos_lint::scan_workspace(root).expect("workspace scan")
}

#[test]
fn workspace_is_lint_clean() {
    let report = scan();
    assert!(
        report.violations.is_empty(),
        "dilos-lint found violations:\n{}",
        report.to_human()
    );
    assert!(report.files_scanned > 50, "scan missed the workspace");
}

#[test]
fn every_suppression_is_justified_and_live() {
    let report = scan();
    for s in &report.suppressions {
        assert!(
            !s.reason.is_empty(),
            "suppression at {}:{} has no reason",
            s.file,
            s.line
        );
        assert!(
            s.used,
            "suppression at {}:{} shields nothing — remove it",
            s.file, s.line
        );
    }
}

#[test]
fn lint_output_is_deterministic() {
    // Two independent scans must serialize byte-identically: the linter
    // obeys its own no-hash-iteration rule.
    let a = scan().to_json();
    let b = scan().to_json();
    assert_eq!(a, b, "dilos-lint --json output is not deterministic");
    assert!(a.contains("\"violations\": []"));
}

#[test]
fn sarif_output_is_deterministic_and_well_formed() {
    // SARIF is what CI uploads; two scans must be byte-identical and the
    // log must carry the full ten-rule table even on a clean tree.
    let a = dilos_lint::sarif::to_sarif(&scan());
    let b = dilos_lint::sarif::to_sarif(&scan());
    assert_eq!(
        a, b,
        "dilos-lint --format sarif output is not deterministic"
    );
    assert!(a.contains("\"version\": \"2.1.0\""));
    assert!(a.contains("\"name\": \"dilos-lint\""));
    for (_, slug) in dilos_lint::RULES {
        assert!(
            a.contains(&format!("\"id\": \"{slug}\"")),
            "missing rule {slug}"
        );
    }
    assert!(a.contains("\"results\": []"), "clean tree, empty results");
}

#[test]
fn deterministic_crates_forbid_unsafe_code() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    for krate in ["core", "sim", "lint", "bench"] {
        let lib = root.join("crates").join(krate).join("src/lib.rs");
        let src = std::fs::read_to_string(&lib).expect("crate root");
        assert!(
            src.contains("#![forbid(unsafe_code)]"),
            "crates/{krate}/src/lib.rs must carry #![forbid(unsafe_code)]"
        );
    }
}
