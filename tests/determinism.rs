//! Determinism, enforced: the virtual-time simulation is a pure function of
//! its configuration and seed.
//!
//! Two fresh boots of the same system driven through the same seeded
//! workload must emit byte-identical event traces — compared here via the
//! order-sensitive trace digest, which folds every event (faults, RDMA
//! verbs, link transfers, frame churn, PTE transitions) in emission order.
//! Any hidden nondeterminism (hash-map iteration leaking into decisions,
//! wall-clock use, allocator-address dependence) changes the digest.

use dilos::apps::farmem::{FarMemory, SystemKind, SystemSpec};
use dilos::sim::Observability;

/// SplitMix64: a tiny deterministic PRNG for the driver workload.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

const WS_PAGES: u64 = 192;

/// A seeded mixed workload: sequential warm-up, then random reads/writes,
/// then a strided sweep — enough to exercise faults, prefetch, eviction,
/// and writeback on every system.
fn drive(mem: &mut dyn FarMemory, seed: u64) {
    let va = mem.alloc((WS_PAGES * 4096) as usize);
    for p in 0..WS_PAGES {
        mem.write_u64(0, va + p * 4096, seed ^ p);
    }
    let mut rng = Rng(seed);
    for _ in 0..600 {
        let p = rng.next() % WS_PAGES;
        let addr = va + p * 4096 + (rng.next() % 500) * 8;
        if rng.next().is_multiple_of(3) {
            mem.write_u64(0, addr, rng.next());
        } else {
            let _ = mem.read_u64(0, addr);
        }
    }
    for p in (0..WS_PAGES).step_by(3) {
        let _ = mem.read_u64(0, va + p * 4096);
    }
}

fn digest_of(kind: SystemKind, ratio: u32, seed: u64) -> u64 {
    let spec = SystemSpec::for_working_set(kind, WS_PAGES * 4096, ratio)
        .observed(Observability::tracing());
    let mut mem = spec.boot();
    drive(mem.as_mut(), seed);
    mem.trace_digest()
}

#[test]
fn trace_digests_are_reproducible_across_boots() {
    for kind in [
        SystemKind::DilosReadahead,
        SystemKind::DilosTrend,
        SystemKind::Fastswap,
        SystemKind::Aifm,
    ] {
        for ratio in [13u32, 100] {
            let a = digest_of(kind, ratio, 0xD15C0);
            let b = digest_of(kind, ratio, 0xD15C0);
            assert_ne!(a, 0, "{} @ {ratio}%: trace must record", kind.label());
            assert_eq!(a, b, "{} @ {ratio}%: nondeterministic trace", kind.label());
        }
    }
}

#[test]
fn different_seeds_produce_different_traces() {
    let a = digest_of(SystemKind::DilosReadahead, 13, 1);
    let b = digest_of(SystemKind::DilosReadahead, 13, 2);
    assert_ne!(a, b, "the digest must be sensitive to the workload");
}

#[test]
fn reclaim_episodes_evict_at_distinct_virtual_times() {
    use dilos::sim::TraceEvent;

    // This test replays the event ring, so it must hold the whole run —
    // the default ring is sized for digests (cache-resident), not replay.
    let spec = SystemSpec::for_working_set(SystemKind::DilosReadahead, WS_PAGES * 4096, 13)
        .observed(Observability::tracing_with_ring(1 << 18));
    let mut mem = spec.boot();
    drive(mem.as_mut(), 0xEC);
    // trace_digest() quiesces the event calendar, so every in-flight
    // reclaim tick has landed and every open episode is closed.
    let _ = mem.trace_digest();
    let events = mem.as_dilos().expect("DiLOS node").trace().events();

    let mut in_episode = false;
    let mut last_evict: Option<u64> = None;
    let mut episodes = 0u32;
    let mut multi_evict_episodes = 0u32;
    let mut evicts_this_episode = 0u32;
    for (t, ev) in events {
        match ev {
            TraceEvent::ReclaimBegin { .. } => {
                assert!(!in_episode, "nested ReclaimBegin at {t}");
                in_episode = true;
                last_evict = None;
                evicts_this_episode = 0;
                episodes += 1;
            }
            TraceEvent::ReclaimEnd { .. } => {
                assert!(in_episode, "ReclaimEnd without ReclaimBegin at {t}");
                in_episode = false;
                if evicts_this_episode > 1 {
                    multi_evict_episodes += 1;
                }
            }
            TraceEvent::Evict { vpn, .. } if in_episode => {
                // Each eviction is one calendar tick: virtual time must
                // advance strictly between victims. The old lazy-pull model
                // stamped an entire episode at a single instant.
                if let Some(prev) = last_evict {
                    assert!(
                        t > prev,
                        "evictions of vpn {vpn:#x} and its predecessor share \
                         virtual time {t} within one reclaim episode"
                    );
                }
                last_evict = Some(t);
                evicts_this_episode += 1;
            }
            _ => {}
        }
    }
    assert!(!in_episode, "quiesce must close the final episode");
    assert!(episodes > 0, "workload must trigger background reclaim");
    assert!(
        multi_evict_episodes > 0,
        "need at least one multi-eviction episode for the check to bite"
    );
}

/// The metrics registry, sampler, and span profiler must be pure observers:
/// booting with metrics on cannot change a single event in the trace. The
/// sampler runs on a registry-private calendar precisely so its ticks never
/// reach the systems' event loops.
#[test]
fn metrics_leave_trace_digests_unchanged() {
    for kind in [
        SystemKind::DilosReadahead,
        SystemKind::DilosTrend,
        SystemKind::Fastswap,
        SystemKind::Aifm,
    ] {
        for ratio in [13u32, 100] {
            let spec = SystemSpec::for_working_set(kind, WS_PAGES * 4096, ratio)
                .observed(Observability::metered());
            let mut mem = spec.boot();
            drive(mem.as_mut(), 0xD15C0);
            // Digesting quiesces, which also flushes sampler ticks up to
            // the completion horizon — check samples only afterwards.
            let metered = mem.trace_digest();
            assert_eq!(
                metered,
                digest_of(kind, ratio, 0xD15C0),
                "{} @ {ratio}%: metrics perturbed the trace",
                kind.label()
            );
            // The sampler ticks every interval up to the completion
            // horizon — exactly floor(max_now / interval) times. (AIFM at
            // 100% local finishes inside one interval: zero ticks is
            // correct there, not a telemetry hole.)
            let m = mem.metrics();
            assert_eq!(
                m.samples(),
                mem.max_now() / m.sample_interval_ns(),
                "{} @ {ratio}%: wrong sampler tick count",
                kind.label()
            );
        }
    }
}

/// Same seed, two fresh metered boots: every telemetry artifact must come
/// out byte-identical — counters, gauge series, and folded profiler stacks.
#[test]
fn telemetry_artifacts_are_byte_identical_across_boots() {
    let run = || {
        let spec = SystemSpec::for_working_set(SystemKind::DilosReadahead, WS_PAGES * 4096, 13)
            .observed(Observability::metered());
        let mut mem = spec.boot();
        drive(mem.as_mut(), 0xBEEF);
        mem.trace_digest();
        let m = mem.metrics();
        let p = mem.profiler();
        (
            m.counters_json(),
            m.gauges_json(),
            m.series_json(),
            p.folded(),
            p.histograms_json(),
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0, "counters diverged");
    assert_eq!(a.1, b.1, "gauges diverged");
    assert_eq!(a.2, b.2, "series diverged");
    assert_eq!(a.3, b.3, "folded stacks diverged");
    assert_eq!(a.4, b.4, "histograms diverged");
    assert!(!a.3.is_empty(), "metered run must produce profiler spans");
}

/// A system booted without `--metrics` carries disabled handles that record
/// nothing and emit empty artifacts — the zero-cost-when-off contract.
#[test]
fn disabled_telemetry_emits_nothing() {
    let spec = SystemSpec::for_working_set(SystemKind::DilosReadahead, WS_PAGES * 4096, 13);
    let mut mem = spec.boot();
    drive(mem.as_mut(), 3);
    let m = mem.metrics();
    let p = mem.profiler();
    assert!(!m.is_enabled());
    assert!(!p.is_enabled());
    assert_eq!(m.samples(), 0);
    assert_eq!(m.counters_json(), "{}");
    assert_eq!(m.gauges_json(), "{}");
    assert_eq!(m.series_json(), "{}");
    assert_eq!(p.folded(), "");
    assert_eq!(p.histograms_json(), "{}");
}

#[test]
fn audited_deterministic_run_is_violation_free() {
    let spec = SystemSpec::for_working_set(SystemKind::DilosReadahead, WS_PAGES * 4096, 13)
        .observed(Observability::audited());
    let mut mem = spec.boot();
    drive(mem.as_mut(), 7);
    let report = mem.audit_report();
    assert!(report.is_empty(), "audit violations: {report:#?}");
    // Auditing must not perturb the simulation or the digest: a trace-only
    // boot of the same run lands on the same digest.
    assert_eq!(
        mem.trace_digest(),
        digest_of(SystemKind::DilosReadahead, 13, 7),
        "the auditor must be a pure observer"
    );
}
