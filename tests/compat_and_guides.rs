//! End-to-end tests of the compatibility layer (§5) and the guide plumbing:
//! unmodified "binaries" get their allocators patched, guides attach as
//! third-party modules, and the umbrella crate exposes everything.

use std::cell::RefCell;
use std::rc::Rc;

use dilos::alloc::{Heap, PageLiveness};
use dilos::core::{
    Dilos, DilosConfig, GuideOps, HeapPagingGuide, PrefetchGuide, SymbolKind, SymbolPatcher,
    SymbolTable, MAP_DDC,
};

#[test]
fn loader_patches_an_unmodified_binary() {
    // The "binary": a symbol table as the ELF loader would see it.
    let mut redis = SymbolTable::new();
    for sym in ["malloc", "free", "calloc", "realloc"] {
        redis.declare(sym, SymbolKind::Alloc);
    }
    redis.declare("lookupKeyRead", SymbolKind::Hookable);
    redis.declare("listTypeNext", SymbolKind::Hookable);
    redis.declare("main", SymbolKind::Other);

    let report = SymbolPatcher::new().patch(&mut redis, &["lookupKeyRead", "listTypeNext"]);
    assert_eq!(
        report.patched.len(),
        4,
        "all malloc-family symbols rerouted"
    );
    assert_eq!(report.hooked.len(), 2, "guide hooks installed");
    assert_eq!(redis.resolve("malloc"), Some("ddc_malloc"));
    assert_eq!(redis.resolve("main"), Some("main"), "app code untouched");
}

#[test]
fn mmap_map_ddc_selects_disaggregated_backing() {
    let mut node = Dilos::new(DilosConfig {
        local_pages: 64,
        remote_bytes: 1 << 24,
        ..DilosConfig::default()
    });
    let ddc = node.mmap(1 << 16, MAP_DDC);
    let local = node.mmap(1 << 16, 0);
    assert_ne!(ddc >> 40, local >> 40, "separate address regions");

    // Fill both regions beyond the cache; only DDC traffic hits the wire.
    for p in 0..64u64 {
        node.write_u64(0, local + p * 4096, p);
    }
    assert_eq!(node.stats().zero_fills, 0, "local-only memory never faults");
    for p in 0..16u64 {
        node.write_u64(0, ddc + p * 4096, p);
    }
    assert_eq!(node.stats().zero_fills, 16);
}

/// A guide is a separate module: this one counts faults it observes and
/// prefetches a fixed stride, knowing nothing about the application.
struct StrideGuide {
    stride: u64,
    fired: usize,
}

impl PrefetchGuide for StrideGuide {
    fn on_fault(&mut self, va: u64, ops: &mut dyn GuideOps) {
        ops.prefetch_page(va + self.stride * 4096);
        self.fired += 1;
    }
}

#[test]
fn third_party_guides_attach_without_touching_the_app() {
    let mut node = Dilos::new(DilosConfig {
        local_pages: 64,
        remote_bytes: 1 << 24,
        ..DilosConfig::default()
    });
    let guide = Rc::new(RefCell::new(StrideGuide {
        stride: 2,
        fired: 0,
    }));
    node.set_prefetch_guide(guide.clone());

    // The "application": a plain strided scan, unaware of the guide.
    let va = node.ddc_alloc(512 * 4096);
    for p in 0..512u64 {
        node.write_u64(0, va + p * 4096, p);
    }
    let mut acc = 0u64;
    for p in (0..512u64).step_by(2) {
        acc = acc.wrapping_add(node.read_u64(0, va + p * 4096));
    }
    assert_eq!(acc, (0..512u64).step_by(2).sum::<u64>());
    assert!(guide.borrow().fired > 0, "the guide saw faults");
    assert!(
        node.stats().prefetch_issued > 0,
        "and prefetched through the API"
    );
}

#[test]
fn paging_guide_and_allocator_compose_through_the_umbrella_crate() {
    let mut node = Dilos::new(DilosConfig {
        local_pages: 64,
        remote_bytes: 1 << 24,
        ..DilosConfig::default()
    });
    let region = node.ddc_alloc(1 << 22);
    let heap = Rc::new(RefCell::new(Heap::new(region, 1 << 22)));
    node.set_paging_guide(Rc::new(RefCell::new(HeapPagingGuide::new(
        Rc::clone(&heap),
        3,
    ))));

    // Allocate objects, free most, verify liveness drives the transfers.
    let mut vas = Vec::new();
    for _ in 0..256 {
        vas.push(heap.borrow_mut().malloc(256).expect("sized"));
    }
    for va in vas.iter().skip(1).step_by(2) {
        heap.borrow_mut().free(*va).expect("live");
    }
    for va in vas.iter().step_by(2) {
        node.write(0, *va, &[0x7E; 256]);
    }
    let probe_page = vas[0] & !4095;
    match heap.borrow().live_segments(probe_page, 3) {
        PageLiveness::Partial(segs) => assert!(segs.len() <= 3),
        PageLiveness::Full | PageLiveness::Empty => {}
    }
    // Churn to force guided evictions, then read everything back.
    let churn = node.ddc_alloc(256 * 4096);
    for p in 0..256u64 {
        node.write_u64(0, churn + p * 4096, p);
    }
    for va in vas.iter().step_by(2) {
        let mut buf = [0u8; 256];
        node.read(0, *va, &mut buf);
        assert!(buf.iter().all(|&b| b == 0x7E));
    }
    assert!(node.stats().guided_evictions > 0);
    assert!(node.stats().writeback_bytes_saved > 0);
}

#[test]
fn virtual_time_is_fully_deterministic_end_to_end() {
    let run = || {
        let mut node = Dilos::new(DilosConfig {
            local_pages: 96,
            remote_bytes: 1 << 24,
            ..DilosConfig::default()
        });
        node.set_prefetcher(Box::new(dilos::core::TrendBased::new()));
        let va = node.ddc_alloc(400 * 4096);
        for p in 0..400u64 {
            node.write_u64(0, va + p * 4096, p ^ 0xAA);
        }
        let mut acc = 0u64;
        for p in (0..400u64).rev() {
            acc ^= node.read_u64(0, va + p * 4096);
        }
        (
            acc,
            node.now(0),
            node.stats().major_faults,
            node.stats().evictions,
        )
    };
    assert_eq!(run(), run());
}
