//! Integration tests for the multi-tenant serving cluster: determinism of
//! the open-loop load generator, QoS noisy-neighbor isolation, and the
//! per-tenant frame-quota invariant.

use std::cell::RefCell;
use std::rc::Rc;

use dilos::core::{Auditor, ClusterConfig, ServingCluster, TenantSpec};
use dilos::sim::{Ns, Observability, TraceEvent, TraceSink};
use dilos_bench::loadgen::{drive, Arrival, RequestKind, TenantLoad};
use dilos_bench::serve::{serve_qos, ServeScale};

fn victim_spec(obs: Observability) -> TenantSpec {
    TenantSpec {
        local_quota: 256,
        local_demand: 256,
        remote_bytes: 1 << 24,
        bandwidth_share: 4,
        cores: 1,
        obs,
    }
}

fn noisy_spec() -> TenantSpec {
    TenantSpec {
        local_quota: 256,
        local_demand: 2_048,
        remote_bytes: 1 << 25,
        bandwidth_share: 1,
        cores: 1,
        obs: Observability::none(),
    }
}

fn victim_load(seed: u64) -> TenantLoad {
    TenantLoad {
        seed,
        arrival: Arrival::Open { mean_ns: 50_000 },
        requests: 150,
        kind: RequestKind::PointRead { touches: 2 },
        working_pages: 384,
    }
}

fn noisy_load() -> TenantLoad {
    TenantLoad {
        seed: 0x5CA7,
        arrival: Arrival::Closed { think_ns: 0 },
        requests: 60,
        kind: RequestKind::Scan { pages: 256 },
        working_pages: 2_048,
    }
}

/// Drives victim + noisy tenants, returning (worst victim p99, worst victim
/// p99.9, victim-0 trace digest).
fn contended_run(qos: bool) -> (Ns, Ns, u64) {
    let mut cluster = ServingCluster::boot(ClusterConfig {
        qos,
        tenants: vec![
            victim_spec(Observability::audited()),
            victim_spec(Observability::tracing()),
            noisy_spec(),
        ],
        ..ClusterConfig::default()
    });
    let results = drive(
        &mut cluster,
        &[victim_load(0xA0), victim_load(0xB1), noisy_load()],
    );
    assert!(
        cluster.audit_reports().is_empty(),
        "audited tenants must stay clean under load"
    );
    let p99 = results[..2].iter().map(|r| r.latency.p99()).max().unwrap();
    let p999 = results[..2].iter().map(|r| r.latency.p999()).max().unwrap();
    (p99, p999, cluster.tenant(0).trace_digest())
}

#[test]
fn same_seed_boots_give_byte_identical_tables_and_digests() {
    let run = || {
        let mut cluster = ServingCluster::boot(ClusterConfig {
            qos: true,
            tenants: vec![
                victim_spec(Observability::tracing()),
                victim_spec(Observability::tracing()),
            ],
            ..ClusterConfig::default()
        });
        let results = drive(&mut cluster, &[victim_load(1), victim_load(2)]);
        let table: Vec<(Ns, Ns, Ns, Ns, u64)> = results
            .iter()
            .map(|r| {
                (
                    r.latency.p50(),
                    r.latency.p90(),
                    r.latency.p99(),
                    r.latency.p999(),
                    r.latency.count(),
                )
            })
            .collect();
        let digests = (
            cluster.tenant(0).trace_digest(),
            cluster.tenant(1).trace_digest(),
        );
        (table, digests)
    };
    let (table_a, digests_a) = run();
    let (table_b, digests_b) = run();
    assert_eq!(table_a, table_b, "percentile tables must be byte-identical");
    assert_eq!(digests_a, digests_b, "trace digests must be byte-identical");
    assert_ne!(digests_a.0, 0, "victim traces must actually record");
}

#[test]
fn serve_report_json_is_byte_stable() {
    let scale = ServeScale {
        victim_requests: 100,
        victim_mean_ns: 50_000,
        noisy_requests: 40,
    };
    assert_eq!(serve_qos(scale).to_json(), serve_qos(scale).to_json());
}

#[test]
fn qos_on_bounds_victim_tail_inflation_and_qos_off_does_not() {
    // Solo baseline: the victims with no neighbor.
    let mut solo = ServingCluster::boot(ClusterConfig {
        qos: false,
        tenants: vec![
            victim_spec(Observability::audited()),
            victim_spec(Observability::tracing()),
        ],
        ..ClusterConfig::default()
    });
    let solo_results = drive(&mut solo, &[victim_load(0xA0), victim_load(0xB1)]);
    let solo_p999 = solo_results[..2]
        .iter()
        .map(|r| r.latency.p999())
        .max()
        .unwrap()
        .max(1);

    let (off_p99, off_p999, off_digest) = contended_run(false);
    let (on_p99, on_p999, on_digest) = contended_run(true);

    const BOUND: Ns = 4;
    assert!(
        on_p999 <= BOUND * solo_p999,
        "QoS on must bound victim p99.9: {on_p999} vs solo {solo_p999}"
    );
    assert!(
        off_p999 > BOUND * solo_p999,
        "QoS off must NOT bound victim p99.9 (else the experiment shows \
         nothing): {off_p999} vs solo {solo_p999}"
    );
    assert!(
        off_p99 > on_p99,
        "the noisy neighbor must hurt more without QoS: off {off_p99} vs on {on_p99}"
    );
    assert_ne!(
        off_digest, on_digest,
        "the two policies must produce genuinely different schedules"
    );
}

/// Negative test: the per-tenant frame-conservation invariant must flag a
/// tenant whose live-frame population exceeds its quota (a broken cluster
/// boot or arena-accounting bug would show up exactly like this).
#[test]
fn frame_quota_invariant_flags_an_over_quota_tenant() {
    let sink = TraceSink::recording();
    let mut auditor = Auditor::new();
    auditor.set_frame_quota(2);
    let auditor = Rc::new(RefCell::new(auditor));
    sink.attach(auditor.clone());
    sink.emit(1, TraceEvent::FrameAlloc { frame: 0 });
    sink.emit(2, TraceEvent::FrameAlloc { frame: 1 });
    assert!(
        auditor.borrow().is_clean(),
        "within quota must stay clean: {:?}",
        auditor.borrow().violations()
    );
    sink.emit(3, TraceEvent::FrameAlloc { frame: 2 });
    let a = auditor.borrow();
    assert_eq!(a.violation_count(), 1, "over-quota must be flagged once");
    assert!(
        a.violations()[0].contains("frame quota exceeded"),
        "violation must name the invariant: {:?}",
        a.violations()
    );
}
