//! The tentpole proof: memnode crash–recovery with detectable replay,
//! established by a crash-at-any-event sweep.
//!
//! The recovery model gives every memory node durable state — a periodic
//! checkpoint of its page/region tables plus a write-intent log appended
//! *before* any remote write or eviction writeback is acknowledged — and a
//! calendar-driven injector that can kill the victim at any data-path
//! completion index. Recovery replays the intent log onto the last
//! checkpoint, reconciles with the surviving replicas, and rejoins through
//! the scheduled `NodeRepair` path.
//!
//! The sweep boots the same seeded workload, crashes at every sampled event
//! index, recovers, and asserts three things for each crash point:
//!
//! 1. **Audit-clean**: every invariant holds, including the two this model
//!    adds — no acknowledged write lost, no frame resurrected.
//! 2. **Data-complete**: the post-recovery read-back checksum equals the
//!    crash-free run's.
//! 3. **Deterministic**: a second boot at the same (seed, crash-point)
//!    pair emits a byte-identical trace digest.

use dilos::core::{Dilos, DilosConfig, Readahead};
use dilos::sim::{Observability, RecoverConfig, RecoveryStats};

/// SplitMix64: a tiny deterministic PRNG for the driver workload.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

const WS_PAGES: u64 = 256;
const SEED: u64 = 0xC4A5;
/// Crash points sampled from the crash-free run's completion count.
const SWEEP_SAMPLES: u64 = 12;

fn boot(crash_at: Option<u64>) -> Dilos {
    let mut n = Dilos::new(DilosConfig {
        local_pages: 64,
        remote_bytes: 1 << 24,
        memory_nodes: 3,
        replication: 2,
        recovery: Some(RecoverConfig {
            crash_at_event: crash_at,
            victim: 1,
            checkpoint_every: 32,
            repair_delay_ns: 1_500_000,
            ..RecoverConfig::default()
        }),
        obs: Observability::audited(),
        ..DilosConfig::default()
    });
    n.set_prefetcher(Box::new(Readahead::new()));
    n
}

/// Seeded mixed workload (populate, random read/write storm, full read-back
/// pass), 4× the cache so evictions keep the intent log busy. Returns the
/// read-back checksum — identical across runs iff no write was lost.
fn drive(n: &mut Dilos, seed: u64) -> u64 {
    let va = n.ddc_alloc((WS_PAGES * 4096) as usize);
    for p in 0..WS_PAGES {
        n.write_u64(0, va + p * 4096, seed ^ p);
    }
    let mut rng = Rng(seed);
    for _ in 0..400 {
        let p = rng.next() % WS_PAGES;
        let addr = va + p * 4096 + (rng.next() % 500) * 8;
        if rng.next().is_multiple_of(3) {
            n.write_u64(0, addr, rng.next());
        } else {
            let _ = n.read_u64(0, addr);
        }
    }
    let mut fold = 0u64;
    for p in 0..WS_PAGES {
        fold = fold
            .wrapping_mul(0x0000_0100_0000_01B3)
            .wrapping_add(n.read_u64(0, va + p * 4096));
    }
    fold
}

struct Run {
    digest: u64,
    fold: u64,
    stats: RecoveryStats,
    report: Vec<String>,
}

fn run(crash_at: Option<u64>) -> Run {
    let mut n = boot(crash_at);
    let fold = drive(&mut n, SEED);
    let report = n.audit_report();
    let digest = n.trace_digest();
    Run {
        digest,
        fold,
        stats: n.recovery_stats(),
        report,
    }
}

/// The sweep: crash the victim at every sampled completion index, recover,
/// and require audit-clean state, the crash-free checksum, and a
/// byte-identical digest on a second boot of the same crash point.
#[test]
fn crash_at_any_sampled_event_recovers_clean_and_deterministic() {
    let baseline = run(None);
    assert!(
        baseline.report.is_empty(),
        "crash-free run must audit clean: {:#?}",
        baseline.report
    );
    assert_eq!(
        baseline.stats.crashes, 0,
        "injector must stay quiet unarmed"
    );
    let total = baseline.stats.completions;
    assert!(
        total > SWEEP_SAMPLES,
        "workload too small to sample {SWEEP_SAMPLES} crash points ({total} completions)"
    );

    let stride = total / SWEEP_SAMPLES;
    let mut crash_points = Vec::new();
    let mut at = 1;
    while at <= total {
        crash_points.push(at);
        at += stride;
    }
    for &crash_at in &crash_points {
        let a = run(Some(crash_at));
        assert!(
            a.report.is_empty(),
            "crash at event {crash_at}: audit violations: {:#?}",
            a.report
        );
        assert_eq!(a.stats.crashes, 1, "crash at event {crash_at} never fired");
        assert_eq!(
            a.stats.recoveries, 1,
            "crash at event {crash_at} never recovered"
        );
        assert_eq!(
            a.fold, baseline.fold,
            "crash at event {crash_at}: post-recovery data diverged — a write was lost"
        );
        let b = run(Some(crash_at));
        assert_eq!(
            a.digest, b.digest,
            "crash at event {crash_at}: nondeterministic crash/recovery trace"
        );
        assert!(a.digest != 0 && a.digest != baseline.digest);
    }
}

/// Recovery latency scales with the intent-log depth at the crash: the
/// modeled cost charges per replayed record and per reconciled page, so a
/// crash right after a checkpoint seal replays less than one right before.
#[test]
fn recovery_latency_reflects_intent_log_depth() {
    let baseline = run(None);
    let late = run(Some(baseline.stats.completions * 3 / 4));
    assert!(late.report.is_empty(), "{:#?}", late.report);
    assert_eq!(late.stats.recoveries, 1);
    assert!(
        late.stats.recovery_ns > 0,
        "recovery must charge modeled latency"
    );
    assert_eq!(
        late.stats.recovery_ns,
        late.stats.replayed * 500 + late.stats.reconciled * 2_000,
        "recovery latency must decompose into replay + reconciliation"
    );
}

/// Disarmed boots carry zero recovery surface: no crashes, no recoveries,
/// and no recovery events perturbing the trace — the digest matches a boot
/// that never heard of the recovery module.
#[test]
fn disarmed_boot_has_no_recovery_surface() {
    let plain = || {
        let mut n = Dilos::new(DilosConfig {
            local_pages: 64,
            remote_bytes: 1 << 24,
            memory_nodes: 3,
            replication: 2,
            obs: Observability::audited(),
            ..DilosConfig::default()
        });
        n.set_prefetcher(Box::new(Readahead::new()));
        let fold = drive(&mut n, SEED);
        let report = n.audit_report();
        (n.trace_digest(), fold, n.recovery_stats(), report)
    };
    let (digest_a, fold_a, stats, report) = plain();
    assert!(report.is_empty(), "{report:#?}");
    assert_eq!(stats, RecoveryStats::default());
    let (digest_b, fold_b, ..) = plain();
    assert_eq!(digest_a, digest_b, "disarmed boots must stay deterministic");
    assert_eq!(fold_a, fold_b);
    // Arming changes the trace (intent/checkpoint events are real events);
    // the armed-but-uncrashed run still computes the same data.
    let armed = run(None);
    assert_eq!(armed.fold, fold_a, "arming must not change the data");
    assert_ne!(
        armed.digest, digest_a,
        "armed boots emit durability events; identical digests mean the \
         intent log never engaged"
    );
}
