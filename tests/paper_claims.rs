//! The paper's major claims (artifact appendix §A.4.1), as assertions.
//!
//! These are scaled-down versions of the claims the benches regenerate in
//! full; each test checks the *direction and rough magnitude* of a headline
//! result. Everything runs in virtual time, so the assertions are exact and
//! deterministic.

use std::cell::RefCell;
use std::rc::Rc;

use dilos::alloc::Heap;
use dilos::apps::farmem::{Introspect, SystemKind, SystemSpec};
use dilos::apps::redis::{LrangeBench, RedisBench, RedisGuide, RedisServer, ValueSizes};
use dilos::apps::seqrw::SeqWorkload;
use dilos::baselines::{Fastswap, FastswapConfig};
use dilos::core::{Dilos, DilosConfig, HeapPagingGuide, Readahead};

/// C1 (µ-bench form): DiLOS beats Fastswap on sequential read at 12.5 %
/// local memory, and the paging subsystem's fault handler is ~2× cheaper.
#[test]
fn c1_dilos_outperforms_fastswap_on_sequential_read() {
    let pages = 1024usize;
    let wl = SeqWorkload { pages };

    let mut fsw = Fastswap::new(FastswapConfig {
        local_pages: 128,
        remote_bytes: 1 << 26,
        ..FastswapConfig::default()
    });
    let base = wl.populate(&mut fsw);
    let f = wl.read_pass(&mut fsw, base);

    let mut spec =
        SystemSpec::for_working_set(SystemKind::DilosReadahead, (pages * 4096) as u64, 13);
    spec.local_pages = 128;
    let mut dil = spec.boot();
    let base = wl.populate(dil.as_mut());
    let d = wl.read_pass(dil.as_mut(), base);

    assert!(
        d.gbps() > 2.0 * f.gbps(),
        "DiLOS readahead {:.2} GB/s vs Fastswap {:.2} GB/s",
        d.gbps(),
        f.gbps()
    );
    // Figure 6: DiLOS's average fault is roughly half of Fastswap's.
    let d_fault = dil.as_dilos().expect("dilos").stats().breakdown.avg_total();
    let f_fault = fsw.stats().breakdown.avg_total();
    assert!(
        2 * d_fault < f_fault + f_fault / 2,
        "DiLOS {d_fault} ns vs Fastswap {f_fault} ns per fault"
    );
    // And the reclaim phase is fully hidden in DiLOS.
    assert_eq!(dil.as_dilos().expect("dilos").stats().breakdown.reclaim, 0);
    assert!(fsw.stats().breakdown.reclaim > 0);
}

fn boot_redis_dilos(
    guided: bool,
    local_pages: usize,
    heap_bytes: u64,
) -> (Dilos, RedisServer, Rc<RefCell<RedisGuide>>) {
    let mut node = Dilos::new(DilosConfig {
        local_pages,
        remote_bytes: (heap_bytes * 2).next_power_of_two().max(1 << 24),
        ..DilosConfig::default()
    });
    node.set_prefetcher(Box::new(Readahead::new()));
    let base = node.ddc_alloc(heap_bytes as usize);
    let heap = Rc::new(RefCell::new(Heap::new(base, heap_bytes)));
    let guide = Rc::new(RefCell::new(RedisGuide::new()));
    if guided {
        node.set_prefetch_guide(guide.clone());
        node.set_paging_guide(Rc::new(RefCell::new(HeapPagingGuide::new(
            Rc::clone(&heap),
            3,
        ))));
    }
    let mut server = RedisServer::new(heap, &mut node, 4096);
    if guided {
        server.attach_guide(guide.clone());
    }
    (node, server, guide)
}

/// C2: the app-aware prefetcher beats general-purpose prefetching on
/// LRANGE (the paper reports +62 %).
#[test]
fn c2_app_aware_prefetcher_wins_on_lrange() {
    let run = |guided: bool| {
        let (mut node, mut server, guide) = boot_redis_dilos(guided, 128, 8 << 20);
        let bench = LrangeBench {
            lists: 16,
            elements: 2_400,
            elem_size: 400,
            seed: 3,
        };
        bench.populate(&mut server, &mut node);
        let r = bench.run(&mut server, &mut node, 80);
        let assists = guide.borrow().stats.lrange_assists;
        (r.qps(), assists)
    };
    let (plain, _) = run(false);
    let (aware, assists) = run(true);
    assert!(assists > 0, "the guide must have been driven");
    assert!(
        aware > 1.25 * plain,
        "app-aware {aware:.0} req/s vs readahead {plain:.0} req/s"
    );
}

/// C3: guided paging reduces network traffic on a fragmented keyspace
/// (the paper reports 12 % for DEL and 29 % for GET).
#[test]
fn c3_guided_paging_reduces_bandwidth() {
    let run = |guided: bool| {
        let (mut node, mut server, _) = boot_redis_dilos(guided, 48, 8 << 20);
        let bench = RedisBench {
            keys: 2_048,
            sizes: ValueSizes::Fixed(128),
            seed: 5,
        };
        bench.populate(&mut server, &mut node);
        let deleted = bench.run_dels(&mut server, &mut node, 70);
        let (tx0, rx0) = Introspect::net_bytes(&node);
        bench.run_gets_surviving(&mut server, &mut node, &deleted, 400);
        let (tx1, rx1) = Introspect::net_bytes(&node);
        (tx1 - tx0) + (rx1 - rx0)
    };
    let unguided = run(false);
    let guided = run(true);
    assert!(
        (guided as f64) < 0.85 * unguided as f64,
        "guided {guided} bytes vs unguided {unguided} bytes"
    );
}

/// Table 1's shape: Fastswap's sequential read is dominated by minor
/// faults from the swap cache; DiLOS's prefetchers produce strictly fewer
/// total faults.
#[test]
fn fault_count_shape_tables_1_and_3() {
    let pages = 1024usize;
    let wl = SeqWorkload { pages };

    let mut fsw = Fastswap::new(FastswapConfig {
        local_pages: 128,
        remote_bytes: 1 << 26,
        ..FastswapConfig::default()
    });
    let b = wl.populate(&mut fsw);
    wl.read_pass(&mut fsw, b);
    let fs = fsw.stats();
    assert!(
        fs.minor_faults >= 6 * fs.major_faults,
        "~87.5 % minor: {} vs {}",
        fs.minor_faults,
        fs.major_faults
    );

    let mut spec =
        SystemSpec::for_working_set(SystemKind::DilosReadahead, (pages * 4096) as u64, 13);
    spec.local_pages = 128;
    let mut dil = spec.boot();
    let b = wl.populate(dil.as_mut());
    wl.read_pass(dil.as_mut(), b);
    let (dmaj, dmin) = dil.fault_counts();
    assert!(
        dmaj + dmin < fs.major_faults + fs.minor_faults,
        "DiLOS total faults {} must undercut Fastswap {}",
        dmaj + dmin,
        fs.major_faults + fs.minor_faults
    );
}

/// AIFM's two signatures: it loses at 100 % local memory (per-deref tax)
/// while staying competitive under pressure on sequential scans.
#[test]
fn aifm_tradeoff_shape() {
    use dilos::apps::snappy::SnappyWorkload;
    let wl = SnappyWorkload {
        input_bytes: 256 * 1024,
        seed: 1,
    };
    let run = |kind, ratio| {
        let mut mem = SystemSpec::for_working_set(kind, wl.input_bytes as u64 * 2, ratio).boot();
        let src = wl.populate(mem.as_mut());
        wl.roundtrip_far(mem.as_mut(), src).elapsed
    };
    // At 12.5 %, AIFM must beat Fastswap clearly (paper: 35–40 % gap).
    let aifm_tight = run(SystemKind::Aifm, 13);
    let fsw_tight = run(SystemKind::Fastswap, 13);
    assert!(
        aifm_tight < fsw_tight,
        "AIFM {aifm_tight} vs Fastswap {fsw_tight} at 12.5 %"
    );
    // At 100 %, AIFM is "similar to or slower than DiLOS" (§6.2) — the
    // per-deref checks stop paying off. Allow a 5 % tolerance on "similar";
    // snappy's bulk reads amortize the deref tax almost completely.
    let aifm_full = run(SystemKind::Aifm, 100);
    let dilos_full = run(SystemKind::DilosReadahead, 100);
    assert!(
        aifm_full * 100 >= dilos_full * 95,
        "AIFM {aifm_full} vs DiLOS {dilos_full} at 100 %"
    );
}
