//! Engine-core determinism battery: the arena-backed calendar, flat page
//! store, and dense LRU must not leak allocation or iteration order into
//! anything `repro` writes to disk.
//!
//! `repro` persists `bench.json` (all experiments) and a standalone
//! `serve.json` for the CI determinism gate, both rendered via
//! [`Report::to_json`]. These tests boot the underlying experiments twice
//! from scratch — two independent arenas, two independent slot/generation
//! histories — and pin the rendered JSON byte-identical, the same
//! comparison CI's double-run `cmp` performs on the full artifacts.

use dilos_bench::micro::{tab01_tab03_fault_counts, MicroScale};
use dilos_bench::serve::{serve_qos, ServeScale};

fn micro() -> MicroScale {
    MicroScale {
        pages: 256,
        ratio: 25,
    }
}

fn serve() -> ServeScale {
    ServeScale {
        victim_requests: 60,
        victim_mean_ns: 50_000,
        noisy_requests: 30,
    }
}

#[test]
fn tab01_json_is_byte_identical_across_boots() {
    let a = tab01_tab03_fault_counts(micro()).to_json();
    let b = tab01_tab03_fault_counts(micro()).to_json();
    assert!(!a.is_empty());
    assert_eq!(a, b, "bench.json content must be byte-stable across boots");
}

#[test]
fn serve_json_is_byte_identical_across_boots() {
    let a = serve_qos(serve()).to_json();
    let b = serve_qos(serve()).to_json();
    assert!(!a.is_empty());
    assert_eq!(a, b, "serve.json must be byte-stable across boots");
}

#[test]
fn tab01_json_carries_digests_and_no_host_time() {
    let json = tab01_tab03_fault_counts(micro()).to_json();
    assert!(
        json.contains("0x"),
        "tab01 notes should carry trace digests: {json}"
    );
    for leak in ["wall_clock", "elapsed", "ms/op"] {
        assert!(!json.contains(leak), "host-time leak {leak:?} in {json}");
    }
}
