//! The §5.1 future-work extension, end to end: multiple memory nodes with
//! page striping and replication, surviving a memory-node failure.
//!
//! The paper leaves this open ("an asynchronous storage backup mechanism or
//! erasure-coding-based replication is one candidate approach … Extending
//! DiLOS to support multiple memory nodes for replication or sharding is a
//! future research direction"); this reproduction implements synchronous
//! replication over a sharded pool.

use dilos::core::{Dilos, DilosConfig, Readahead};
use dilos::sim::Observability;

fn ec_node(memory_nodes: usize, k: usize, m: usize) -> Dilos {
    let mut n = Dilos::new(DilosConfig {
        local_pages: 64,
        remote_bytes: 1 << 24,
        memory_nodes,
        erasure: Some((k, m)),
        obs: Observability::audited(),
        ..DilosConfig::default()
    });
    n.set_prefetcher(Box::new(Readahead::new()));
    n
}

fn node(memory_nodes: usize, replication: usize) -> Dilos {
    let mut n = Dilos::new(DilosConfig {
        local_pages: 64,
        remote_bytes: 1 << 24,
        memory_nodes,
        replication,
        obs: Observability::audited(),
        ..DilosConfig::default()
    });
    n.set_prefetcher(Box::new(Readahead::new()));
    n
}

/// Degraded and repaired runs must not just read back correctly — every
/// traced invariant has to hold too (frame conservation, PTE legality,
/// link-byte accounting, and the recovery invariants when armed).
fn assert_audit_clean(n: &mut Dilos, ctx: &str) {
    let report = n.audit_report();
    assert!(report.is_empty(), "{ctx}: audit violations: {report:#?}");
}

/// Populates a working set 4× the cache and returns its base (so a good
/// chunk of it lives on the memory nodes).
fn populate(n: &mut Dilos, pages: u64) -> u64 {
    let va = n.ddc_alloc(pages as usize * 4096);
    for p in 0..pages {
        n.write_u64(0, va + p * 4096, p.wrapping_mul(0x9E37));
    }
    va
}

#[test]
fn sharded_pool_behaves_like_one_big_node() {
    let mut single = node(1, 1);
    let mut sharded = node(4, 1);
    let va_s = populate(&mut single, 256);
    let va_m = populate(&mut sharded, 256);
    for p in 0..256u64 {
        assert_eq!(
            single.read_u64(0, va_s + p * 4096),
            sharded.read_u64(0, va_m + p * 4096),
            "page {p}"
        );
    }
    // Sharding spreads traffic over the four links.
    let per_node_rx = sharded.rdma().fabric().bandwidth().total_rx();
    let (_, total_rx) = sharded.rdma().total_bytes();
    assert!(
        per_node_rx * 3 < total_rx,
        "node 0 carries {per_node_rx} of {total_rx} bytes — not spread"
    );
}

#[test]
fn replicated_node_survives_memory_node_failure() {
    let mut n = node(3, 2);
    let pages = 256u64;
    let va = populate(&mut n, pages);

    // Kill one node mid-run; every page must still read back correctly.
    n.fail_memory_node(1);
    for p in 0..pages {
        assert_eq!(
            n.read_u64(0, va + p * 4096),
            p.wrapping_mul(0x9E37),
            "page {p} lost after node failure"
        );
    }
    assert!(n.rdma().failovers() > 0, "some reads must have failed over");

    // Writes (evictions) keep flowing to the survivors: push a second
    // working set through and read it back.
    let vb = populate(&mut n, pages);
    for p in 0..pages {
        assert_eq!(n.read_u64(0, vb + p * 4096), p.wrapping_mul(0x9E37));
    }
    assert_audit_clean(&mut n, "degraded run");
}

#[test]
fn scheduled_repair_lands_at_its_virtual_time() {
    let mut n = node(3, 2);
    let pages = 256u64;
    let va = populate(&mut n, pages);

    n.fail_memory_node(1);
    let repair_at = n.now(0) + 2_000_000;
    n.schedule_memory_node_repair(repair_at, 1);
    assert!(!n.rdma().node_alive(1), "repair must not apply eagerly");

    // Sweep the working set until the calendar brings node 1 back
    // mid-workload, resynced from the surviving replicas. (Events fire as
    // accesses advance the clock past them, so the repair lands on the
    // first access whose start time reaches `repair_at`.)
    let mut sweeps = 0;
    while !n.rdma().node_alive(1) {
        for p in 0..pages {
            assert_eq!(n.read_u64(0, va + p * 4096), p.wrapping_mul(0x9E37));
        }
        sweeps += 1;
        assert!(sweeps < 1_000, "repair event never dispatched");
    }
    assert!(
        n.now(0) >= repair_at,
        "repair applied before its scheduled virtual time"
    );

    // After repair the node serves reads again: kill a *different* node
    // and the pool still has a live copy of everything.
    n.fail_memory_node(0);
    for p in 0..pages {
        assert_eq!(
            n.read_u64(0, va + p * 4096),
            p.wrapping_mul(0x9E37),
            "page {p} lost after post-repair failure"
        );
    }
    assert_audit_clean(&mut n, "repair + second failure");
}

#[test]
fn failover_costs_the_detection_timeout_once_per_node() {
    let mut n = node(2, 2);
    let va = populate(&mut n, 128);
    let before = n.now(0);
    n.fail_memory_node(0);
    for p in 0..128u64 {
        let _ = n.read_u64(0, va + p * 4096);
    }
    let elapsed = n.now(0) - before;
    let timeout = n.config().sim.failover_detect_ns;
    assert!(
        elapsed > timeout,
        "first dead-node access must pay the retry timeout"
    );
    assert!(
        elapsed < timeout * 3,
        "the timeout must be paid once, not per access: {elapsed}"
    );
}

#[test]
#[should_panic(expected = "all replicas")]
fn unreplicated_failure_is_fatal() {
    let mut n = node(2, 1);
    let va = populate(&mut n, 256);
    n.fail_memory_node(0);
    // Touching enough pages guarantees hitting a lost shard.
    for p in 0..256u64 {
        let _ = n.read_u64(0, va + p * 4096);
    }
}

#[test]
fn replication_costs_eviction_bandwidth_not_fault_latency() {
    let run = |replication| {
        let mut n = node(3, replication);
        let va = populate(&mut n, 256);
        let t0 = n.now(0);
        for p in 0..256u64 {
            let _ = n.read_u64(0, va + p * 4096);
        }
        let read_time = n.now(0) - t0;
        let (tx, _) = n.rdma().total_bytes();
        (read_time, tx)
    };
    let (t1, tx1) = run(1);
    let (t2, tx2) = run(2);
    assert!(
        tx2 > tx1 * 3 / 2,
        "2-way replication must roughly double writeback traffic: {tx1} vs {tx2}"
    );
    // Fault latency is read-path; replication rides the write path.
    assert!(
        t2 < t1 + t1 / 4,
        "read-back must not slow down much under replication: {t1} vs {t2}"
    );
}

#[test]
fn erasure_coded_node_survives_failure_with_less_overhead() {
    // Same protection level (any one node may die), two mechanisms.
    let pages = 256u64;

    let mut repl = node(4, 2);
    let va = populate(&mut repl, pages);
    let repl_stored = repl.rdma().total_resident_pages();

    let mut ec = ec_node(4, 3, 1);
    let vb = populate(&mut ec, pages);
    let ec_stored = ec.rdma().total_resident_pages();

    // Erasure coding's advantage is storage: (k + m)/k = 1.33× instead of
    // replication's 2× (per-page parity deltas still cost eviction
    // bandwidth — Carbink's span batching would reclaim that too).
    assert!(
        ec_stored * 10 < repl_stored * 8,
        "EC must store markedly less than 2x replication: {ec_stored} vs {repl_stored} pages"
    );

    // Both survive a single node death with intact data.
    repl.fail_memory_node(0);
    ec.fail_memory_node(0);
    for p in 0..pages {
        assert_eq!(repl.read_u64(0, va + p * 4096), p.wrapping_mul(0x9E37));
        assert_eq!(ec.read_u64(0, vb + p * 4096), p.wrapping_mul(0x9E37));
    }
    assert!(
        ec.rdma().reconstructions() > 0,
        "EC reads must have decoded"
    );
    assert_audit_clean(&mut repl, "replicated degraded run");
    assert_audit_clean(&mut ec, "erasure-coded degraded run");
}

#[test]
fn erasure_coded_degraded_reads_are_slower_than_failover() {
    let pages = 192u64;
    let run = |mut n: Dilos| {
        let va = populate(&mut n, pages);
        n.fail_memory_node(0);
        let t0 = n.now(0);
        for p in 0..pages {
            let _ = n.read_u64(0, va + p * 4096);
        }
        n.now(0) - t0
    };
    let t_repl = run(node(4, 2));
    let t_ec = run(ec_node(4, 3, 1));
    // Replication reads one replica; EC reads k shards per degraded access.
    assert!(
        t_ec > t_repl,
        "degraded EC reads must cost more than replica reads: {t_ec} vs {t_repl}"
    );
}
