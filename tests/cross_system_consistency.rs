//! Compatibility, executable: every workload computes bit-identical results
//! on DiLOS, Fastswap, and AIFM, at every local-memory ratio.
//!
//! This is the reproduction's version of the paper's central claim — the
//! memory system is transparent to the application.

use dilos::apps::dataframe::TaxiWorkload;
use dilos::apps::farmem::{FarArray, SystemKind, SystemSpec};
use dilos::apps::gapbs::GraphWorkload;
use dilos::apps::kmeans::KmeansWorkload;
use dilos::apps::quicksort::QuicksortWorkload;
use dilos::apps::snappy::SnappyWorkload;
use dilos::sim::Observability;

const SYSTEMS: [SystemKind; 4] = [
    SystemKind::DilosReadahead,
    SystemKind::DilosTrend,
    SystemKind::Fastswap,
    SystemKind::Aifm,
];

#[test]
fn quicksort_checksum_is_system_independent() {
    let wl = QuicksortWorkload {
        elements: 6_000,
        seed: 77,
    };
    let mut reference = None;
    for kind in SYSTEMS {
        for ratio in [13u32, 100] {
            let mut mem = SystemSpec::for_working_set(kind, 6_000 * 8, ratio).boot();
            let arr = wl.populate(mem.as_mut());
            wl.sort(mem.as_mut(), arr);
            assert!(wl.verify(mem.as_mut(), arr), "{} @ {ratio}%", kind.label());
            // Positional checksum: catches any permutation difference.
            let mut sum = 0u64;
            for i in 0..arr.len() {
                sum = sum
                    .wrapping_mul(31)
                    .wrapping_add(arr.get(mem.as_mut(), 0, i));
            }
            match reference {
                None => reference = Some(sum),
                Some(r) => assert_eq!(r, sum, "{} @ {ratio}%", kind.label()),
            }
        }
    }
}

#[test]
fn kmeans_centroids_are_system_independent() {
    let wl = KmeansWorkload {
        points: 6_000,
        k: 6,
        max_iters: 6,
        seed: 5,
    };
    let mut reference: Option<Vec<f64>> = None;
    for kind in SYSTEMS {
        let mut mem = SystemSpec::for_working_set(kind, 6_000 * 16, 25).boot();
        let pts = wl.populate(mem.as_mut());
        let r = wl.run(mem.as_mut(), pts);
        match &reference {
            None => reference = Some(r.centroids),
            Some(c) => assert_eq!(*c, r.centroids, "{}", kind.label()),
        }
    }
}

#[test]
fn taxi_analysis_is_system_independent() {
    let wl = TaxiWorkload {
        rows: 4_000,
        seed: 9,
    };
    let mut reference = None;
    for kind in SYSTEMS {
        let mut mem = SystemSpec::for_working_set(kind, wl.working_set(), 25).boot();
        let t = wl.populate(mem.as_mut());
        let mut a = wl.analyze(mem.as_mut(), &t);
        a.elapsed = 0;
        match &reference {
            None => reference = Some(a),
            Some(r) => assert_eq!(*r, a, "{}", kind.label()),
        }
    }
}

#[test]
fn pagerank_and_bc_are_system_independent() {
    let wl = GraphWorkload {
        scale: 8,
        edge_factor: 8,
        seed: 1,
        threads: 2,
    };
    let mut pr_ref: Option<Vec<f64>> = None;
    let mut bc_ref: Option<Vec<f64>> = None;
    for kind in [SystemKind::DilosReadahead, SystemKind::Fastswap] {
        let mut spec = SystemSpec::for_working_set(kind, wl.working_set(), 25);
        spec.cores = 2;
        let mut mem = spec.boot();
        let g = wl.build(mem.as_mut());
        let (pr, _) = wl.pagerank(mem.as_mut(), &g, 5);
        let (bc, _) = wl.betweenness(mem.as_mut(), &g, 2);
        match &pr_ref {
            None => pr_ref = Some(pr),
            Some(r) => assert_eq!(*r, pr, "{} PR", kind.label()),
        }
        match &bc_ref {
            None => bc_ref = Some(bc),
            Some(r) => assert_eq!(*r, bc, "{} BC", kind.label()),
        }
    }
}

#[test]
fn snappy_output_is_system_independent_and_correct() {
    let wl = SnappyWorkload {
        input_bytes: 128 * 1024,
        seed: 11,
    };
    let mut sizes = Vec::new();
    for kind in SYSTEMS {
        let mut mem = SystemSpec::for_working_set(kind, wl.input_bytes as u64 * 2, 13).boot();
        let src = wl.populate(mem.as_mut());
        let r = wl.compress_far(mem.as_mut(), src);
        sizes.push(r.out_bytes);
    }
    assert!(sizes.windows(2).all(|w| w[0] == w[1]), "{sizes:?}");
}

/// SplitMix64, for the seeded differential workload below.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A seeded random mix of reads and writes of varying lengths, replayed on
/// every system at every paper ratio. Each run is checked three ways: reads
/// must match a flat-memory model byte for byte, the fold of all reads must
/// agree across systems, and the DiLOS runs carry the invariant auditor,
/// which must stay silent.
#[test]
fn randomized_mixed_rw_is_system_independent() {
    const WS_PAGES: usize = 96;
    const WS: usize = WS_PAGES * 4096;
    const SEED: u64 = 0xC0FFEE;

    let mut reference: Option<u64> = None;
    for kind in SYSTEMS {
        for ratio in [13u32, 25, 50, 100] {
            let audited = matches!(kind, SystemKind::DilosReadahead | SystemKind::DilosTrend);
            let obs = if audited {
                Observability::audited()
            } else {
                Observability::tracing()
            };
            let mut mem = SystemSpec::for_working_set(kind, WS as u64, ratio)
                .observed(obs)
                .boot();
            let base = mem.alloc(WS);
            let mut model = vec![0u8; WS];
            let mut rng = Rng(SEED);
            let mut fold = 0u64;
            for _ in 0..400 {
                let at = (rng.next() as usize) % WS;
                let len = 1 + (rng.next() as usize) % 6000.min(WS - at);
                if rng.next().is_multiple_of(2) {
                    let stamp = rng.next() as u8;
                    let data: Vec<u8> = (0..len).map(|i| stamp.wrapping_add(i as u8)).collect();
                    mem.write(0, base + at as u64, &data);
                    model[at..at + len].copy_from_slice(&data);
                } else {
                    let mut buf = vec![0u8; len];
                    mem.read(0, base + at as u64, &mut buf);
                    assert_eq!(
                        &buf[..],
                        &model[at..at + len],
                        "{} @ {ratio}%: read at {at} len {len}",
                        kind.label()
                    );
                    for b in buf {
                        fold = fold.wrapping_mul(131).wrapping_add(b as u64);
                    }
                }
            }
            match reference {
                None => reference = Some(fold),
                Some(r) => assert_eq!(r, fold, "{} @ {ratio}%", kind.label()),
            }
            assert_ne!(
                mem.trace_digest(),
                0,
                "{} @ {ratio}%: traced run must record",
                kind.label()
            );
            if audited {
                let report = mem.audit_report();
                assert!(
                    report.is_empty(),
                    "{} @ {ratio}%: audit violations: {report:#?}",
                    kind.label()
                );
            }
        }
    }
}

/// Trace-derived telemetry must agree with the hand-maintained counters:
/// the span profiler counts faults by watching `FaultBegin` events, while
/// each system increments its own stats fields on the fault path. A
/// divergence means either the trace or the stats lies about what ran.
#[test]
fn trace_derived_metrics_match_hand_counters() {
    const WS_PAGES: usize = 128;
    const WS: usize = WS_PAGES * 4096;

    for kind in SYSTEMS {
        for ratio in [13u32, 50] {
            let mut mem = SystemSpec::for_working_set(kind, WS as u64, ratio)
                .observed(Observability::metered())
                .boot();
            let base = mem.alloc(WS);
            let mut rng = Rng(0xFEED_F00D);
            // A write pass to force zero-fills, then a random mix to force
            // majors/minors under pressure.
            for p in 0..WS_PAGES {
                mem.write_u64(0, base + (p * 4096) as u64, p as u64);
            }
            for _ in 0..500 {
                let at = ((rng.next() as usize) % WS) & !7;
                if rng.next().is_multiple_of(2) {
                    mem.write_u64(0, base + at as u64, at as u64);
                } else {
                    mem.read_u64(0, base + at as u64);
                }
            }
            // Quiesce so late minor-fault completions and background
            // reclaim are all delivered before comparing.
            mem.trace_digest();
            let profiler = mem.profiler();
            let (major, minor, zero) = mem.fault_counters();
            let tag = format!("{} @ {ratio}%", kind.label());
            assert_eq!(profiler.fault_count("major"), major, "{tag}: major");
            assert_eq!(profiler.fault_count("minor"), minor, "{tag}: minor");
            assert_eq!(profiler.fault_count("zero_fill"), zero, "{tag}: zero");
            assert!(major > 0, "{tag}: workload produced no major faults");
            // DiLOS keeps a per-phase breakdown; the profiler's phase sums
            // (derived from FaultPhase trace spans) must equal it exactly.
            for (phase, ns) in mem.phase_sums() {
                assert_eq!(
                    profiler.phase_sum(phase),
                    ns,
                    "{tag}: phase {phase} diverged"
                );
            }
            // The registry's scheduler counters must balance: everything
            // scheduled was either delivered or cancelled.
            let metrics = mem.metrics();
            let scheduled = metrics.counter_total("sched_scheduled");
            let done =
                metrics.counter_total("sched_delivered") + metrics.counter_total("sched_cancelled");
            assert!(
                done <= scheduled,
                "{tag}: delivered+cancelled {done} > scheduled {scheduled}"
            );
        }
    }
}

/// The compatibility claim under fire: an erasure-coded DiLOS pool serving
/// degraded reads (one node manually dead) while the crash injector kills a
/// *second* node mid-workload computes the same answer as every healthy
/// system. k=2, m=2 tolerates both outages; recovery replays the victim's
/// intent log and reconciles from the surviving shards, and the auditor
/// (including the no-acknowledged-write-lost invariant) must stay silent.
#[test]
fn degraded_reads_with_concurrent_crash_match_healthy_systems() {
    use dilos::apps::farmem::FarMemory;
    use dilos::core::{Dilos, DilosConfig, Readahead};
    use dilos::sim::RecoverConfig;

    const WS_PAGES: u64 = 128;
    const SEED: u64 = 0xEC0;

    fn populate(mem: &mut dyn FarMemory) -> u64 {
        let base = mem.alloc((WS_PAGES * 4096) as usize);
        for p in 0..WS_PAGES {
            mem.write_u64(0, base + p * 4096, SEED ^ p.wrapping_mul(0x9E37));
        }
        base
    }

    fn storm_and_fold(mem: &mut dyn FarMemory, base: u64) -> u64 {
        let mut rng = Rng(SEED);
        for _ in 0..300 {
            let p = rng.next() % WS_PAGES;
            let addr = base + p * 4096 + (rng.next() % 500) * 8;
            if rng.next().is_multiple_of(3) {
                mem.write_u64(0, addr, rng.next());
            } else {
                let _ = mem.read_u64(0, addr);
            }
        }
        let mut fold = 0u64;
        for p in 0..WS_PAGES {
            fold = fold
                .wrapping_mul(131)
                .wrapping_add(mem.read_u64(0, base + p * 4096));
        }
        fold
    }

    // Reference: the same workload on every healthy system.
    let mut reference: Option<u64> = None;
    for kind in SYSTEMS {
        let mut mem = SystemSpec::for_working_set(kind, WS_PAGES * 4096, 25).boot();
        let base = populate(mem.as_mut());
        let fold = storm_and_fold(mem.as_mut(), base);
        match reference {
            None => reference = Some(fold),
            Some(r) => assert_eq!(r, fold, "{}", kind.label()),
        }
    }
    let reference = reference.expect("four systems ran");

    // The EC pool under double trouble, with the crash point calibrated
    // from an armed-but-uncrashed run of the same sequence.
    let ec_run = |crash_at: Option<u64>| {
        let mut n = Dilos::new(DilosConfig {
            local_pages: 32,
            remote_bytes: 1 << 24,
            memory_nodes: 4,
            erasure: Some((2, 2)),
            recovery: Some(RecoverConfig {
                crash_at_event: crash_at,
                victim: 2,
                checkpoint_every: 32,
                repair_delay_ns: 1_500_000,
                ..RecoverConfig::default()
            }),
            obs: Observability::audited(),
            ..DilosConfig::default()
        });
        n.set_prefetcher(Box::new(Readahead::new()));
        let base = populate(&mut n);
        n.fail_memory_node(0); // degraded reads from here on
        let fold = storm_and_fold(&mut n, base);
        let report = n.audit_report();
        let reconstructions = n.rdma().reconstructions();
        (fold, n.recovery_stats(), reconstructions, report)
    };
    let (fold_base, base_stats, _, base_report) = ec_run(None);
    assert!(base_report.is_empty(), "{base_report:#?}");
    assert_eq!(fold_base, reference, "degraded EC run diverged");

    let crash_at = base_stats.completions / 2;
    let (fold, stats, reconstructions, report) = ec_run(Some(crash_at));
    assert!(report.is_empty(), "audit violations: {report:#?}");
    assert_eq!(stats.crashes, 1, "injector never fired at {crash_at}");
    assert_eq!(stats.recoveries, 1, "victim never rejoined");
    assert!(reconstructions > 0, "no degraded read ever decoded");
    assert_eq!(
        fold, reference,
        "crash during degraded reads changed the computation"
    );
}

#[test]
fn far_array_bulk_ops_survive_pressure_everywhere() {
    for kind in SYSTEMS {
        let mut mem = SystemSpec::for_working_set(kind, 1 << 20, 13).boot();
        let arr = FarArray::new(mem.as_mut(), 32_768);
        let vals: Vec<u64> = (0..32_768u64).map(|i| i.wrapping_mul(0x9E37)).collect();
        for chunk in 0..64 {
            arr.write_range(
                mem.as_mut(),
                0,
                chunk * 512,
                &vals[chunk * 512..(chunk + 1) * 512],
            );
        }
        let mut out = vec![0u64; 512];
        for chunk in (0..64).rev() {
            arr.read_range(mem.as_mut(), 0, chunk * 512, &mut out);
            assert_eq!(
                out,
                vals[chunk * 512..(chunk + 1) * 512],
                "{}",
                kind.label()
            );
        }
    }
}
