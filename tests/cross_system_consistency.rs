//! Compatibility, executable: every workload computes bit-identical results
//! on DiLOS, Fastswap, and AIFM, at every local-memory ratio.
//!
//! This is the reproduction's version of the paper's central claim — the
//! memory system is transparent to the application.

use dilos::apps::dataframe::TaxiWorkload;
use dilos::apps::farmem::{FarArray, SystemKind, SystemSpec};
use dilos::apps::gapbs::GraphWorkload;
use dilos::apps::kmeans::KmeansWorkload;
use dilos::apps::quicksort::QuicksortWorkload;
use dilos::apps::snappy::SnappyWorkload;

const SYSTEMS: [SystemKind; 4] = [
    SystemKind::DilosReadahead,
    SystemKind::DilosTrend,
    SystemKind::Fastswap,
    SystemKind::Aifm,
];

#[test]
fn quicksort_checksum_is_system_independent() {
    let wl = QuicksortWorkload {
        elements: 6_000,
        seed: 77,
    };
    let mut reference = None;
    for kind in SYSTEMS {
        for ratio in [13u32, 100] {
            let mut mem = SystemSpec::for_working_set(kind, 6_000 * 8, ratio).boot();
            let arr = wl.populate(mem.as_mut());
            wl.sort(mem.as_mut(), arr);
            assert!(wl.verify(mem.as_mut(), arr), "{} @ {ratio}%", kind.label());
            // Positional checksum: catches any permutation difference.
            let mut sum = 0u64;
            for i in 0..arr.len() {
                sum = sum
                    .wrapping_mul(31)
                    .wrapping_add(arr.get(mem.as_mut(), 0, i));
            }
            match reference {
                None => reference = Some(sum),
                Some(r) => assert_eq!(r, sum, "{} @ {ratio}%", kind.label()),
            }
        }
    }
}

#[test]
fn kmeans_centroids_are_system_independent() {
    let wl = KmeansWorkload {
        points: 6_000,
        k: 6,
        max_iters: 6,
        seed: 5,
    };
    let mut reference: Option<Vec<f64>> = None;
    for kind in SYSTEMS {
        let mut mem = SystemSpec::for_working_set(kind, 6_000 * 16, 25).boot();
        let pts = wl.populate(mem.as_mut());
        let r = wl.run(mem.as_mut(), pts);
        match &reference {
            None => reference = Some(r.centroids),
            Some(c) => assert_eq!(*c, r.centroids, "{}", kind.label()),
        }
    }
}

#[test]
fn taxi_analysis_is_system_independent() {
    let wl = TaxiWorkload {
        rows: 4_000,
        seed: 9,
    };
    let mut reference = None;
    for kind in SYSTEMS {
        let mut mem = SystemSpec::for_working_set(kind, wl.working_set(), 25).boot();
        let t = wl.populate(mem.as_mut());
        let mut a = wl.analyze(mem.as_mut(), &t);
        a.elapsed = 0;
        match &reference {
            None => reference = Some(a),
            Some(r) => assert_eq!(*r, a, "{}", kind.label()),
        }
    }
}

#[test]
fn pagerank_and_bc_are_system_independent() {
    let wl = GraphWorkload {
        scale: 8,
        edge_factor: 8,
        seed: 1,
        threads: 2,
    };
    let mut pr_ref: Option<Vec<f64>> = None;
    let mut bc_ref: Option<Vec<f64>> = None;
    for kind in [SystemKind::DilosReadahead, SystemKind::Fastswap] {
        let mut spec = SystemSpec::for_working_set(kind, wl.working_set(), 25);
        spec.cores = 2;
        let mut mem = spec.boot();
        let g = wl.build(mem.as_mut());
        let (pr, _) = wl.pagerank(mem.as_mut(), &g, 5);
        let (bc, _) = wl.betweenness(mem.as_mut(), &g, 2);
        match &pr_ref {
            None => pr_ref = Some(pr),
            Some(r) => assert_eq!(*r, pr, "{} PR", kind.label()),
        }
        match &bc_ref {
            None => bc_ref = Some(bc),
            Some(r) => assert_eq!(*r, bc, "{} BC", kind.label()),
        }
    }
}

#[test]
fn snappy_output_is_system_independent_and_correct() {
    let wl = SnappyWorkload {
        input_bytes: 128 * 1024,
        seed: 11,
    };
    let mut sizes = Vec::new();
    for kind in SYSTEMS {
        let mut mem = SystemSpec::for_working_set(kind, wl.input_bytes as u64 * 2, 13).boot();
        let src = wl.populate(mem.as_mut());
        let r = wl.compress_far(mem.as_mut(), src);
        sizes.push(r.out_bytes);
    }
    assert!(sizes.windows(2).all(|w| w[0] == w[1]), "{sizes:?}");
}

#[test]
fn far_array_bulk_ops_survive_pressure_everywhere() {
    for kind in SYSTEMS {
        let mut mem = SystemSpec::for_working_set(kind, 1 << 20, 13).boot();
        let arr = FarArray::new(mem.as_mut(), 32_768);
        let vals: Vec<u64> = (0..32_768u64).map(|i| i.wrapping_mul(0x9E37)).collect();
        for chunk in 0..64 {
            arr.write_range(
                mem.as_mut(),
                0,
                chunk * 512,
                &vals[chunk * 512..(chunk + 1) * 512],
            );
        }
        let mut out = vec![0u64; 512];
        for chunk in (0..64).rev() {
            arr.read_range(mem.as_mut(), 0, chunk * 512, &mut out);
            assert_eq!(
                out,
                vals[chunk * 512..(chunk + 1) * 512],
                "{}",
                kind.label()
            );
        }
    }
}
